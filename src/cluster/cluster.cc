#include "cluster/cluster.h"

#include <string>
#include <utility>

namespace streamq::cluster {

namespace {

ClusterCoordinatorOptions CoordinatorOptionsOf(const ClusterOptions& options) {
  ClusterCoordinatorOptions c;
  c.nodes = options.nodes;
  c.sketch = options.node_pipeline.sketch;
  c.stale_after = options.stale_after;
  c.probe = options.probe;
  return c;
}

/// SplitMix64 step decorrelating the per-node channel seeds from the
/// user-visible cluster seed (and from the sketch seeds, which come from
/// the config unchanged).
uint64_t MixSeed(uint64_t seed, uint64_t lane) {
  uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (lane + 1);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

std::unique_ptr<QuantileCluster> QuantileCluster::Create(
    const ClusterOptions& options) {
  if (options.nodes < 1) return nullptr;
  if (!options.node_storage.empty() &&
      options.node_storage.size() != static_cast<size_t>(options.nodes)) {
    return nullptr;
  }
  std::unique_ptr<QuantileCluster> cluster(new QuantileCluster(options));
  for (int i = 0; i < options.nodes; ++i) {
    cluster->nodes_[static_cast<size_t>(i)] =
        IngestNode::Create(cluster->NodeOptions(i));
    if (cluster->nodes_[static_cast<size_t>(i)] == nullptr) return nullptr;
  }
  return cluster;
}

QuantileCluster::QuantileCluster(const ClusterOptions& options)
    : options_(options),
      router_(options.routing, options.nodes),
      coordinator_(CoordinatorOptionsOf(options)),
      nodes_(static_cast<size_t>(options.nodes)),
      streams_(static_cast<size_t>(options.nodes)) {
  for (int i = 0; i < options.nodes; ++i) {
    const uint64_t lane = static_cast<uint64_t>(i);
    data_ch_.push_back(std::make_unique<FaultyChannel>(
        options.data_faults, MixSeed(options.seed, 2 * lane)));
    ack_ch_.push_back(std::make_unique<FaultyChannel>(
        options.ack_faults, MixSeed(options.seed, 2 * lane + 1)));
    ack_ptrs_.push_back(ack_ch_.back().get());
  }
}

IngestNodeOptions QuantileCluster::NodeOptions(int node) const {
  IngestNodeOptions n;
  n.node = static_cast<uint32_t>(node);
  n.pipeline = options_.node_pipeline;
  n.theta = options_.theta;
  n.retry = options_.retry;
  if (options_.node_storage.empty()) {
    n.pipeline.durability.enabled = false;
    n.pipeline.durability.storage = nullptr;
  } else {
    n.pipeline.durability.enabled = true;
    n.pipeline.durability.storage = options_.node_storage[size_t(node)];
    n.pipeline.durability.dir =
        options_.dir_prefix + "/node" + std::to_string(node);
  }
  return n;
}

int QuantileCluster::Append(const Update& update) {
  ++now_;
  // Route BEFORE the liveness check and always consume the seq: where an
  // update belongs must not depend on which nodes happen to be up, or the
  // reference run and the faulted run would diverge at the source.
  const uint64_t seq = ++global_seq_;
  const int target = router_.Route(seq, update.value);
  if (nodes_[static_cast<size_t>(target)] == nullptr) {
    ++dropped_appends_;
    Pump();
    return -1;
  }
  streams_[static_cast<size_t>(target)].push_back(update);
  ObserveOn(target, update);
  Pump();
  return target;
}

void QuantileCluster::ObserveOn(int node, const Update& update) {
  nodes_[static_cast<size_t>(node)]->Observe(
      update, now_, *data_ch_[static_cast<size_t>(node)]);
}

void QuantileCluster::Pump() {
  // Shipments up. Data channels are drained even for dead nodes: bytes
  // already on the wire when a node died still arrive.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::string& bytes : data_ch_[i]->Poll(now_)) {
      coordinator_.HandleShipment(bytes, now_, *ack_ch_[i]);
    }
  }
  // Staleness probes down (dead nodes' probes queue on their ack channel
  // and greet them at restart).
  coordinator_.Tick(now_, ack_ptrs_);
  // Acks down + node retransmits.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == nullptr) continue;
    for (const std::string& bytes : ack_ch_[i]->Poll(now_)) {
      nodes_[i]->HandleAck(bytes);
    }
    nodes_[i]->Tick(now_, *data_ch_[i]);
  }
}

bool QuantileCluster::Converged() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!data_ch_[i]->Idle()) return false;
    if (nodes_[i] != nullptr && !nodes_[i]->FullyAcked()) return false;
  }
  return true;
}

bool QuantileCluster::Quiesce(uint64_t max_ticks) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] != nullptr && !nodes_[i]->FullyAcked()) {
      nodes_[i]->ShipComplete(now_, *data_ch_[i]);
    }
  }
  for (uint64_t t = 0; t < max_ticks; ++t) {
    if (Converged()) return true;
    ++now_;
    Pump();
  }
  return Converged();
}

ClusterAnswer QuantileCluster::Query(double phi, QueryScope scope) {
  return coordinator_.Query(phi, now_, scope);
}

ClusterAnswer QuantileCluster::Rank(uint64_t value, QueryScope scope) {
  return coordinator_.Rank(value, now_, scope);
}

void QuantileCluster::KillNode(int node) {
  // The destructor runs the pipeline's Stop path; with a FaultyStorage
  // crash armed by the test, its final flush/checkpoint fails against
  // dead storage without touching the surviving base disk.
  nodes_[static_cast<size_t>(node)].reset();
}

bool QuantileCluster::RestartNode(int node, durability::Storage* storage) {
  if (nodes_[static_cast<size_t>(node)] != nullptr) return false;
  if (storage != nullptr && !options_.node_storage.empty()) {
    options_.node_storage[static_cast<size_t>(node)] = storage;
  }
  nodes_[static_cast<size_t>(node)] = IngestNode::Create(NodeOptions(node));
  return nodes_[static_cast<size_t>(node)] != nullptr;
}

uint64_t QuantileCluster::ReplayNode(int node) {
  IngestNode* n = nodes_[static_cast<size_t>(node)].get();
  if (n == nullptr) return 0;
  const std::vector<Update>& stream = streams_[static_cast<size_t>(node)];
  uint64_t replayed = 0;
  // Stream position p (0-based) carries node-local seq p + 1; recovery's
  // contract is to re-push from ResumeSeq() and let the per-shard dedup
  // absorb whatever the recovered shards already hold beyond the minimum.
  for (uint64_t pos = n->ResumeSeq() - 1; pos < stream.size(); ++pos) {
    ++now_;
    ObserveOn(node, stream[pos]);
    Pump();
    ++replayed;
  }
  return replayed;
}

uint64_t QuantileCluster::StalenessBound() const {
  // Insert-only accounting (the known count is the sketch count, which
  // under turnstile deletions is net): appended-but-unreflected updates.
  // Appends dropped at a dead node's ingress are lost, not stale, and are
  // reported separately by dropped_appends().
  uint64_t total = 0;
  for (size_t i = 0; i < streams_.size(); ++i) {
    const uint64_t appended = streams_[i].size();
    const uint64_t known = coordinator_.KnownCount(static_cast<int>(i));
    if (appended > known) total += appended - known;
  }
  return total;
}

void QuantileCluster::PublishMetrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  const auto set_counter = [&](const std::string& name, uint64_t v) {
    auto& c = registry.GetCounter(prefix + name);
    c.Reset();
    c.Add(v);
  };
  const ClusterCoordinatorStats& cs = coordinator_.stats();
  set_counter(".coordinator.accepted", cs.accepted);
  set_counter(".coordinator.rejected_corrupt", cs.rejected_corrupt);
  set_counter(".coordinator.rejected_malformed", cs.rejected_malformed);
  set_counter(".coordinator.rejected_stale", cs.rejected_stale);
  set_counter(".coordinator.rejected_incompatible", cs.rejected_incompatible);
  set_counter(".coordinator.acks_sent", cs.acks_sent);
  set_counter(".coordinator.probes_sent", cs.probes_sent);
  set_counter(".dropped_appends", dropped_appends_);
  registry.GetGauge(prefix + ".reported_count")
      .Set(static_cast<int64_t>(coordinator_.ReportedCount()));
  registry.GetGauge(prefix + ".staleness_bound")
      .Set(static_cast<int64_t>(StalenessBound()));
  registry.GetGauge(prefix + ".coordinator_memory_bytes")
      .Set(static_cast<int64_t>(coordinator_.MemoryBytes()));
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const std::string node_prefix = prefix + ".node" + std::to_string(i);
    const ClusterNodeStatus status =
        coordinator_.Status(static_cast<int>(i), now_);
    registry.GetGauge(node_prefix + ".alive")
        .Set(nodes_[i] != nullptr ? 1 : 0);
    registry.GetGauge(node_prefix + ".suspect").Set(status.suspect ? 1 : 0);
    registry.GetGauge(node_prefix + ".epoch")
        .Set(static_cast<int64_t>(status.epoch));
    registry.GetGauge(node_prefix + ".known_count")
        .Set(static_cast<int64_t>(status.count));
    registry.GetGauge(node_prefix + ".staleness_ticks")
        .Set(static_cast<int64_t>(status.staleness_ticks));
  }
}

}  // namespace streamq::cluster
