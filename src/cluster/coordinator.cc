#include "cluster/coordinator.h"

#include <algorithm>
#include <utility>

#include "cluster/wire.h"
#include "distributed/ack.h"
#include "obs/trace.h"

namespace streamq::cluster {

ClusterCoordinator::ClusterCoordinator(
    const ClusterCoordinatorOptions& options)
    : options_(options),
      reference_(MakeSketch(options.sketch)),
      views_(static_cast<size_t>(std::max(options.nodes, 1))) {}

void ClusterCoordinator::HandleShipment(const std::string& bytes,
                                        uint64_t now, FaultyChannel& ack_tx) {
  // Rung 1+2: frame validation, then structural parse and range checks.
  ClusterShipment shipment;
  if (!DecodeShipment(bytes, &shipment)) {
    ++stats_.rejected_corrupt;
    return;
  }
  if (shipment.node >= views_.size() || shipment.epoch == 0) {
    ++stats_.rejected_malformed;
    return;
  }
  NodeView& view = views_[shipment.node];
  // Rung 3: epoch dedup. Duplicates and stale reorders are acknowledged
  // (the node needs to learn our horizon) but never re-applied.
  if (shipment.epoch <= view.epoch) {
    ++stats_.rejected_stale;
    SendAck(static_cast<int>(shipment.node), now, ack_tx);
    return;
  }
  // Rung 4+5: decode the nested sketch frame and cross-check its count
  // against the sender's claim. The view is only replaced after a fully
  // successful decode (no partial mutation).
  std::unique_ptr<QuantileSketch> received =
      DeserializeSketch(shipment.sketch_frame);
  if (received == nullptr || received->Count() != shipment.count) {
    ++stats_.rejected_malformed;
    return;
  }
  // Rung 6: a sketch we could not merge at query time is useless -- and a
  // symptom of a misconfigured node -- so refuse it up front.
  if (!reference_->CanMerge(*received)) {
    ++stats_.rejected_incompatible;
    return;
  }
  view.epoch = shipment.epoch;
  view.count = shipment.count;
  view.durable_seq = shipment.durable_seq;
  view.sketch = std::move(received);
  view.last_accept_tick = now;
  view.next_probe_at = 0;
  view.probe_backoff = 0;
  ++stats_.accepted;
  SendAck(static_cast<int>(shipment.node), now, ack_tx);
}

void ClusterCoordinator::SendAck(int node, uint64_t now,
                                 FaultyChannel& ack_tx) {
  AckFrame ack;
  ack.node = static_cast<uint32_t>(node);
  ack.seq = views_[static_cast<size_t>(node)].epoch;
  ack_tx.Send(now, EncodeAck(SnapshotType::kClusterAck, ack));
  ++stats_.acks_sent;
}

void ClusterCoordinator::Tick(uint64_t now,
                              const std::vector<FaultyChannel*>& ack_tx) {
  for (size_t i = 0; i < views_.size(); ++i) {
    NodeView& view = views_[i];
    if (!Suspect(static_cast<int>(i), now)) continue;
    if (i >= ack_tx.size() || ack_tx[i] == nullptr) continue;
    if (now < view.next_probe_at) continue;
    // Re-request the node's current state: an ack carrying our horizon
    // plus the reship flag. A live node answers with a fresh cumulative
    // shipment; a dead one stays suspect and the backoff caps the probe
    // rate.
    AckFrame probe;
    probe.node = static_cast<uint32_t>(i);
    probe.seq = view.epoch;
    probe.flags = kAckFlagReship;
    ack_tx[i]->Send(now, EncodeAck(SnapshotType::kClusterAck, probe));
    ++stats_.probes_sent;
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kClusterProbe, i);
    view.probe_backoff =
        view.probe_backoff == 0
            ? options_.probe.initial_backoff
            : std::min(view.probe_backoff * 2, options_.probe.max_backoff);
    view.next_probe_at = now + view.probe_backoff;
  }
}

bool ClusterCoordinator::Suspect(int node, uint64_t now) const {
  // A node that never reported has last_accept_tick 0 and becomes suspect
  // once the cluster has been up for stale_after ticks -- "down from the
  // start" is staleness too.
  const NodeView& view = views_[static_cast<size_t>(node)];
  return now > view.last_accept_tick &&
         now - view.last_accept_tick > options_.stale_after;
}

std::unique_ptr<QuantileSketch> ClusterCoordinator::MergeScope(
    uint64_t now, QueryScope scope, ClusterAnswer* answer) {
  STREAMQ_TRACE_SPAN(obs::TracePoint::kClusterMerge, views_.size());
  std::unique_ptr<QuantileSketch> merged = MakeSketch(options_.sketch);
  for (size_t i = 0; i < views_.size(); ++i) {
    const NodeView& view = views_[i];
    const bool suspect = Suspect(static_cast<int>(i), now);
    if (suspect) ++answer->nodes_suspect;
    if (view.sketch == nullptr ||
        (scope == QueryScope::kLiveOnly && suspect)) {
      answer->partial = true;
      continue;
    }
    if (merged->Merge(*view.sketch) != StreamqStatus::kOk) {
      // Cannot happen for shipments past rung 6; recorded honestly if a
      // future sketch type breaks the empty-scratch merge assumption.
      answer->partial = true;
      continue;
    }
    ++answer->nodes_merged;
    answer->reported_count += view.count;
  }
  return answer->nodes_merged > 0 ? std::move(merged) : nullptr;
}

ClusterAnswer ClusterCoordinator::Query(double phi, uint64_t now,
                                        QueryScope scope) {
  ClusterAnswer answer;
  std::unique_ptr<QuantileSketch> merged = MergeScope(now, scope, &answer);
  if (merged != nullptr) answer.value = merged->Query(phi);
  return answer;
}

ClusterAnswer ClusterCoordinator::Rank(uint64_t value, uint64_t now,
                                       QueryScope scope) {
  ClusterAnswer answer;
  std::unique_ptr<QuantileSketch> merged = MergeScope(now, scope, &answer);
  if (merged != nullptr) {
    answer.value =
        static_cast<uint64_t>(std::max<int64_t>(0, merged->EstimateRank(value)));
  }
  return answer;
}

ClusterNodeStatus ClusterCoordinator::Status(int node, uint64_t now) const {
  const NodeView& view = views_[static_cast<size_t>(node)];
  ClusterNodeStatus status;
  status.reported = view.sketch != nullptr;
  status.suspect = Suspect(node, now);
  status.epoch = view.epoch;
  status.count = view.count;
  status.durable_seq = view.durable_seq;
  status.last_accept_tick = view.last_accept_tick;
  status.staleness_ticks =
      now > view.last_accept_tick ? now - view.last_accept_tick : 0;
  return status;
}

uint64_t ClusterCoordinator::ReportedCount() const {
  uint64_t total = 0;
  for (const NodeView& view : views_) total += view.count;
  return total;
}

uint64_t ClusterCoordinator::KnownCount(int node) const {
  return views_[static_cast<size_t>(node)].count;
}

uint64_t ClusterCoordinator::HighestEpoch(int node) const {
  return views_[static_cast<size_t>(node)].epoch;
}

size_t ClusterCoordinator::MemoryBytes() const {
  size_t total = 0;
  for (const NodeView& view : views_) {
    if (view.sketch != nullptr) total += view.sketch->MemoryBytes();
  }
  return total;
}

}  // namespace streamq::cluster
