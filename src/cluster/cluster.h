// The cluster tier in one harness: k IngestNodes, one ClusterCoordinator,
// and a pair of FaultyChannels per node (data up, acks down), all under
// the deterministic virtual clock (one tick per appended update).
//
// QuantileCluster is the composition root the tests, benches and examples
// drive. It routes a single logical stream across the nodes with the same
// deterministic ShardRouter the pipeline uses for shards -- the node of an
// update is a pure function of (global seq, value) -- and records each
// node's routed sub-stream, which is what makes kill-and-recover
// reproducible: after a node is restarted from whatever its storage holds,
// ReplayNode() re-pushes exactly the recorded tail from the pipeline's
// ResumeSeq() and the per-shard seq dedup absorbs the overlap.
//
// Failure model: KillNode() drops the node object mid-flight (tests arm a
// FaultyStorage crash first, so the destructor's final flush hits dead
// storage exactly like a real power loss); appends routed to a dead node
// are counted and dropped, like a connection refused at ingress. The
// coordinator keeps answering from the survivors with partial = true and
// per-node staleness; RestartNode() + ReplayNode() then converge the
// revived node back to byte-equality with an uninterrupted run.
//
// Everything -- channel faults, storage faults, routing, sketch
// randomness -- is seed-driven, so any failing configuration replays
// bit-for-bit from its seed.

#ifndef STREAMQ_CLUSTER_CLUSTER_H_
#define STREAMQ_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/ingest_node.h"
#include "distributed/channel.h"
#include "ingest/shard_router.h"
#include "obs/metrics.h"
#include "stream/update.h"

namespace streamq::cluster {

struct ClusterOptions {
  int nodes = 2;
  /// Per-node pipeline template. Its sketch config is shared with the
  /// coordinator; when `node_storage` is supplied, its durability.storage
  /// and durability.dir are overridden per node (enabled = true), and when
  /// not, durability is forced off.
  ingest::IngestOptions node_pipeline;
  /// Count-growth shipping trigger of every node.
  double theta = 0.05;
  RetryPolicy retry;
  /// Coordinator staleness threshold and probe backoff.
  uint64_t stale_after = 1024;
  RetryPolicy probe;
  /// Routes each appended update to a node (seq here is the cluster-wide
  /// append sequence; kRoundRobin balances, kHash keeps values together).
  ingest::ShardingPolicy routing = ingest::ShardingPolicy::kRoundRobin;
  /// Fault model of the two channel directions (same spec for every node;
  /// each node's channels still draw from independent seeded streams).
  FaultSpec data_faults;
  FaultSpec ack_faults;
  uint64_t seed = 1;
  /// One Storage per node => durable cluster. Empty => in-memory only.
  /// Unowned; must outlive the cluster (and any RestartNode it serves).
  std::vector<durability::Storage*> node_storage;
  /// Node i keeps its durable state under "<dir_prefix>/node<i>".
  std::string dir_prefix = "cluster";
};

class QuantileCluster {
 public:
  /// Builds and starts all nodes (running their recovery when durable
  /// state exists). nullptr when the options are rejected (bad node
  /// count, storage vector size mismatch, or a pipeline refusal).
  static std::unique_ptr<QuantileCluster> Create(const ClusterOptions& options);

  /// Appends one update to the cluster: advances the clock, routes to a
  /// node, observes there, and pumps the protocol once. Returns the node
  /// id, or -1 when the target node is down (the update is dropped and
  /// counted -- its seq is still consumed, so routing stays stable).
  int Append(const Update& update);
  int Append(uint64_t value) { return Append(Update{value, +1}); }

  /// One protocol round at the current time: deliver due shipments,
  /// coordinator probes, deliver due acks, node retransmits.
  void Pump();

  /// Ships every live node's complete state and pumps (advancing time)
  /// until the coordinator exactly covers every live node and nothing is
  /// unacked, or max_ticks elapse. True when fully converged.
  bool Quiesce(uint64_t max_ticks = 200'000);

  ClusterAnswer Query(double phi, QueryScope scope = QueryScope::kAll);
  ClusterAnswer Rank(uint64_t value, QueryScope scope = QueryScope::kAll);

  // --- failover ---------------------------------------------------------

  /// Tears the node down where it stands (pending channel traffic stays
  /// in flight; the coordinator keeps its last accepted state). With a
  /// durable node, arm the crash on its FaultyStorage first -- the
  /// destructor's final flush then fails against dead storage exactly
  /// like a power loss.
  void KillNode(int node);

  /// Rebuilds the node from its storage (recovery + NodeMeta). `storage`,
  /// when non-null, replaces the node's storage from here on -- the
  /// restart-from-raw-disk idiom after a FaultyStorage crash. False when
  /// the node is still up or recovery fails.
  bool RestartNode(int node, durability::Storage* storage = nullptr);

  /// Re-pushes the node's recorded sub-stream from its ResumeSeq()
  /// (pumping as it goes); the producer half of the restart contract.
  /// Returns the number of re-pushed updates.
  uint64_t ReplayNode(int node);

  bool NodeAlive(int node) const { return nodes_[size_t(node)] != nullptr; }

  // --- introspection ----------------------------------------------------

  /// Worst-case rank slack of coordinator answers on top of the merged
  /// eps * n bound: updates appended (and not dropped) but not yet
  /// reflected in any accepted shipment, summed over all nodes.
  uint64_t StalenessBound() const;

  uint64_t now() const { return now_; }
  uint64_t appended(int node) const { return streams_[size_t(node)].size(); }
  uint64_t dropped_appends() const { return dropped_appends_; }
  ClusterCoordinator& coordinator() { return coordinator_; }
  const ClusterCoordinator& coordinator() const { return coordinator_; }
  /// nullptr while the node is down.
  IngestNode* node(int node) { return nodes_[size_t(node)].get(); }
  const std::vector<Update>& node_stream(int node) const {
    return streams_[size_t(node)];
  }
  const ChannelStats& data_channel_stats(int node) const {
    return data_ch_[size_t(node)]->stats();
  }
  const ChannelStats& ack_channel_stats(int node) const {
    return ack_ch_[size_t(node)]->stats();
  }
  int nodes() const { return static_cast<int>(nodes_.size()); }

  /// Publishes a cluster snapshot into `registry` under "<prefix>.*":
  /// coordinator accept/reject/probe counters, global reported count and
  /// staleness bound, and per-node gauges (alive, epoch, known count,
  /// staleness ticks) under "<prefix>.node<i>.*".
  void PublishMetrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

 private:
  explicit QuantileCluster(const ClusterOptions& options);

  /// The resolved per-node options (durability storage/dir filled in).
  IngestNodeOptions NodeOptions(int node) const;
  void ObserveOn(int node, const Update& update);
  bool Converged() const;

  ClusterOptions options_;
  ingest::ShardRouter router_;
  ClusterCoordinator coordinator_;
  std::vector<std::unique_ptr<IngestNode>> nodes_;
  std::vector<std::unique_ptr<FaultyChannel>> data_ch_;  // node -> coord
  std::vector<std::unique_ptr<FaultyChannel>> ack_ch_;   // coord -> node
  std::vector<FaultyChannel*> ack_ptrs_;  // coordinator Tick's view
  std::vector<std::vector<Update>> streams_;  // recorded per-node streams
  uint64_t now_ = 0;
  uint64_t global_seq_ = 0;
  uint64_t dropped_appends_ = 0;
};

}  // namespace streamq::cluster

#endif  // STREAMQ_CLUSTER_CLUSTER_H_
