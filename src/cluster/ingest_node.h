// Node half of the cluster data path: a full durable ingest pipeline
// (src/ingest/) that ships its merged view to the ClusterCoordinator.
//
// Where MonitorSite (src/distributed/site.h) observes into a single
// in-memory GKArray, an IngestNode runs the production pipeline -- sharded
// workers, RCU query view and, when configured, the WAL + checkpoint
// durability tier -- and ships *mergeable* sketches, so the coordinator
// can answer exact-count cluster-wide quantiles instead of sampling.
//
// Shipping protocol (count-triggered, hardened like the monitor tier):
//
//  * A node ships whenever its observed count has grown by a factor
//    (1 + theta) since the last shipment. Each shipment is cumulative --
//    the node's complete current sketch under a fresh, monotone epoch --
//    so one successful delivery always brings the coordinator fully up to
//    date regardless of what the channel lost before it.
//  * Unacked shipments retransmit with capped exponential backoff (virtual
//    ticks, like everything in the fault harness).
//  * Acks are validated AckFrames (distributed/ack.h). An ack whose epoch
//    is beyond anything this incarnation sent means the coordinator holds
//    state from a pre-crash life: the node fast-forwards its epoch horizon
//    past it and re-ships, so a restart resynchronises with no extra
//    protocol. An ack carrying kAckFlagReship (the coordinator's staleness
//    probe) likewise forces a fresh shipment.
//
// Failover: a durable node persists a tiny NodeMeta record (wire.h) via
// the atomic write-tmp/sync/rename protocol on every epoch it issues, so
// the restarted incarnation resumes epochs above everything the old one
// could have put on the wire even before the first ack arrives. The
// pipeline's own recovery (checkpoint + WAL tail) restores the data; the
// producer then re-pushes its recorded stream from ResumeSeq() and the
// per-shard seq dedup absorbs the overlap -- exactly the single-process
// restart contract, now driving the cluster resync as well.
//
// Single-threaded like the rest of the virtual-time harness: one owner
// calls Observe/HandleAck/Tick/ShipComplete; the pipeline inside runs its
// own worker threads.

#ifndef STREAMQ_CLUSTER_INGEST_NODE_H_
#define STREAMQ_CLUSTER_INGEST_NODE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "distributed/channel.h"
#include "distributed/site.h"
#include "ingest/ingest_pipeline.h"
#include "stream/update.h"

namespace streamq::cluster {

struct IngestNodeOptions {
  /// This node's id (also its slot at the coordinator; < cluster size).
  uint32_t node = 0;
  /// The node's full pipeline configuration. All nodes of one cluster must
  /// share the same sketch config (identical seed included) or the
  /// coordinator will reject their shipments as merge-incompatible.
  /// durability.dir should be unique per node when durability is on.
  ingest::IngestOptions pipeline;
  /// Count-growth shipping trigger: ship when observed count reaches
  /// (1 + theta) * count at last shipment.
  double theta = 0.05;
  RetryPolicy retry;
};

struct IngestNodeStats {
  size_t shipments = 0;     ///< shipments offered (retransmits included)
  size_t retransmits = 0;   ///< backoff / reship re-offers alone
  size_t rejected_acks = 0; ///< acks dropped (corrupt frame or wrong node)
};

class IngestNode {
 public:
  /// Builds the node (running pipeline recovery first in durable mode) and
  /// loads its NodeMeta epoch horizon. nullptr when the pipeline refuses
  /// its options. A node that recovered prior state starts with a pending
  /// re-ship so the coordinator converges without waiting for growth.
  static std::unique_ptr<IngestNode> Create(const IngestNodeOptions& options);

  ~IngestNode();
  IngestNode(const IngestNode&) = delete;
  IngestNode& operator=(const IngestNode&) = delete;

  /// One update observed at virtual time `now`; ships through `tx` when
  /// the count trigger fires.
  void Observe(const Update& update, uint64_t now, FaultyChannel& tx);

  /// Handles one (possibly corrupted) ack delivery.
  void HandleAck(const std::string& bytes);

  /// Advances virtual time: retransmits when a reship is pending or an
  /// unacked shipment's backoff deadline has passed.
  void Tick(uint64_t now, FaultyChannel& tx);

  /// Flushes the pipeline and ships the complete current state under a
  /// fresh epoch (quiesce path). No-op while the node has observed
  /// nothing.
  void ShipComplete(uint64_t now, FaultyChannel& tx);

  /// Stream positions this incarnation accounts for: everything recovery
  /// promised (ResumeSeq() - 1) plus everything pushed since. After the
  /// producer finishes its re-push this equals the node's full stream
  /// length.
  uint64_t ObservedCount() const;

  /// First stream position (1-based) the producer must (re-)push; the
  /// pipeline's restart contract verbatim.
  uint64_t ResumeSeq() const { return pipeline_->ResumeSeq(); }
  uint64_t DurableSeq() const { return pipeline_->DurableSeq(); }
  const ingest::RecoveryInfo& recovery() const {
    return pipeline_->recovery();
  }

  bool HasUnacked() const {
    return needs_reship_ || last_acked_epoch_ < last_sent_epoch_;
  }

  /// True when the coordinator provably holds this node's complete state:
  /// the newest epoch is acked and it covered every observed update. This
  /// is epoch-based on purpose -- it stays meaningful for turnstile
  /// streams, where the sketch count (net of deletions) and the update
  /// count diverge.
  bool FullyAcked() const {
    return !HasUnacked() && last_shipped_count_ == ObservedCount();
  }

  uint32_t id() const { return options_.node; }
  uint64_t last_sent_epoch() const { return last_sent_epoch_; }
  const IngestNodeStats& stats() const { return stats_; }

  /// The node's pipeline, for local queries and metrics. The shipping
  /// bookkeeping is bypassed -- do not push through it directly.
  ingest::IngestPipeline& pipeline() { return *pipeline_; }

 private:
  IngestNode(const IngestNodeOptions& options,
             std::unique_ptr<ingest::IngestPipeline> pipeline);

  /// Flushes, clones the view, and offers it under a fresh epoch.
  void Ship(uint64_t now, FaultyChannel& tx, bool retransmit);
  /// Persists NodeMeta (durable mode only; best effort -- a failure is
  /// covered by the coordinator's ack fast-forward).
  void PersistMeta();

  IngestNodeOptions options_;
  std::unique_ptr<ingest::IngestPipeline> pipeline_;
  uint64_t last_shipped_count_ = 0;
  uint64_t last_sent_epoch_ = 0;
  uint64_t last_acked_epoch_ = 0;
  uint64_t next_retry_at_ = 0;
  uint64_t backoff_ = 0;
  bool needs_reship_ = false;
  IngestNodeStats stats_;
};

}  // namespace streamq::cluster

#endif  // STREAMQ_CLUSTER_INGEST_NODE_H_
