#include "cluster/wire.h"

#include "util/serde.h"

namespace streamq::cluster {

std::string EncodeShipment(const ClusterShipment& shipment) {
  SerdeWriter w;
  w.U32(shipment.node);
  w.U64(shipment.epoch);
  w.U64(shipment.durable_seq);
  w.U64(shipment.count);
  w.Bytes(shipment.sketch_frame);
  return FrameSnapshot(SnapshotType::kClusterShipment, w.Take());
}

bool DecodeShipment(const std::string& bytes, ClusterShipment* out) {
  std::string payload;
  if (!UnframeSnapshot(bytes, SnapshotType::kClusterShipment, &payload)) {
    return false;
  }
  SerdeReader r(payload);
  ClusterShipment shipment;
  if (!r.U32(&shipment.node) || !r.U64(&shipment.epoch) ||
      !r.U64(&shipment.durable_seq) || !r.U64(&shipment.count) ||
      !r.Bytes(&shipment.sketch_frame) || !r.Done()) {
    return false;
  }
  *out = std::move(shipment);
  return true;
}

std::string EncodeNodeMeta(const NodeMeta& meta) {
  SerdeWriter w;
  w.U32(meta.node);
  w.U64(meta.last_sent_epoch);
  w.U64(meta.durable_seq);
  return FrameSnapshot(SnapshotType::kClusterNodeMeta, w.Take());
}

bool DecodeNodeMeta(const std::string& bytes, NodeMeta* out) {
  std::string payload;
  if (!UnframeSnapshot(bytes, SnapshotType::kClusterNodeMeta, &payload)) {
    return false;
  }
  SerdeReader r(payload);
  NodeMeta meta;
  if (!r.U32(&meta.node) || !r.U64(&meta.last_sent_epoch) ||
      !r.U64(&meta.durable_seq) || !r.Done()) {
    return false;
  }
  *out = meta;
  return true;
}

}  // namespace streamq::cluster
