// Coordinator half of the cluster data path: validates epoch-numbered
// node shipments, keeps the newest accepted sketch per node, and answers
// cluster-wide quantile and rank queries by merging them.
//
// Where MonitorCoordinator (src/distributed/coordinator.h) samples GK
// tuples into a weighted view, the ClusterCoordinator relies on the
// sketches being *mergeable* (Random, MRL99, FastQDigest, DCM, DCS): a
// query merges the per-node sketches -- in node-id order, so the merged
// result is deterministic -- into a fresh scratch sketch built from the
// shared config, which then carries the usual mergeable-summary eps * n
// bound over the union of the merged nodes' streams.
//
// Defence ladder on every shipment, in order (each rung leaves all node
// state untouched on failure):
//   1. frame validation (magic/version/type/length/CRC32C),
//   2. structural parse + node range + epoch != 0,
//   3. epoch dedup (duplicates/stale reorders are re-acked, not applied),
//   4. nested sketch frame decode (its own CRC + exact parse),
//   5. count cross-check (decoded sketch vs sender's claim),
//   6. merge-compatibility check against the shared config.
//
// Degradation is explicit, never silent: per-node staleness (ticks since
// the last accepted shipment) is tracked, silent nodes become "suspect"
// after stale_after ticks and get capped-backoff re-ship probes, and
// queries report how many nodes the answer actually covers (QueryScope
// picks whether suspects are merged or excluded). A dead node degrades
// the answer to the survivors' streams -- within their merged eps * n
// bound -- with partial = true, rather than blocking or guessing.

#ifndef STREAMQ_CLUSTER_COORDINATOR_H_
#define STREAMQ_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distributed/channel.h"
#include "distributed/site.h"
#include "quantile/factory.h"

namespace streamq::cluster {

struct ClusterCoordinatorOptions {
  int nodes = 2;
  /// Shared sketch config (the nodes must be built from the same one).
  SketchConfig sketch;
  /// A node with no accepted shipment for this many ticks is suspect.
  uint64_t stale_after = 1024;
  /// Backoff of the re-ship probes sent to suspect nodes.
  RetryPolicy probe;
};

/// How a query treats suspect nodes.
enum class QueryScope {
  kAll,       ///< merge every node that ever reported (suspects included)
  kLiveOnly,  ///< exclude suspects: the survivors-only partial answer
};

struct ClusterAnswer {
  uint64_t value = 0;           ///< quantile value or rank estimate
  uint64_t reported_count = 0;  ///< union count of the merged nodes
  int nodes_merged = 0;
  int nodes_suspect = 0;        ///< suspect at query time (merged or not)
  /// True when some configured node is missing from the merge (never
  /// reported, or suspect under kLiveOnly): `value` covers only the
  /// merged nodes' streams.
  bool partial = false;
};

/// Per-node view, as reported by Status().
struct ClusterNodeStatus {
  bool reported = false;      ///< at least one accepted shipment
  bool suspect = false;
  uint64_t epoch = 0;
  uint64_t count = 0;
  uint64_t durable_seq = 0;
  uint64_t last_accept_tick = 0;
  uint64_t staleness_ticks = 0;  ///< now - last_accept_tick
};

struct ClusterCoordinatorStats {
  size_t accepted = 0;
  size_t rejected_corrupt = 0;       ///< frame validation failed
  size_t rejected_malformed = 0;     ///< parse/range/count-mismatch failed
  size_t rejected_stale = 0;         ///< epoch dedup (re-acked)
  size_t rejected_incompatible = 0;  ///< sketch not mergeable with config
  size_t acks_sent = 0;
  size_t probes_sent = 0;
};

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(const ClusterCoordinatorOptions& options);

  /// Validates one shipment delivery (the defence ladder above) and, when
  /// accepted or merely stale, acks the node's highest epoch through
  /// `ack_tx`.
  void HandleShipment(const std::string& bytes, uint64_t now,
                      FaultyChannel& ack_tx);

  /// Advances virtual time: sends capped-backoff re-ship probes to
  /// suspect nodes. `ack_tx[i]` is node i's ack channel (nullptr skips
  /// the node -- e.g. the harness knows it is down).
  void Tick(uint64_t now, const std::vector<FaultyChannel*>& ack_tx);

  /// Cluster-wide phi-quantile over the merged scope.
  ClusterAnswer Query(double phi, uint64_t now,
                      QueryScope scope = QueryScope::kAll);

  /// Cluster-wide rank estimate of `value` over the merged scope.
  ClusterAnswer Rank(uint64_t value, uint64_t now,
                     QueryScope scope = QueryScope::kAll);

  ClusterNodeStatus Status(int node, uint64_t now) const;
  bool Suspect(int node, uint64_t now) const;

  /// Union count over every node that ever reported.
  uint64_t ReportedCount() const;
  uint64_t KnownCount(int node) const;
  uint64_t HighestEpoch(int node) const;

  /// Accounting bytes of the retained per-node sketches.
  size_t MemoryBytes() const;

  int nodes() const { return static_cast<int>(views_.size()); }
  const ClusterCoordinatorStats& stats() const { return stats_; }

 private:
  struct NodeView {
    std::unique_ptr<QuantileSketch> sketch;  // newest accepted; null = none
    uint64_t epoch = 0;
    uint64_t count = 0;
    uint64_t durable_seq = 0;
    uint64_t last_accept_tick = 0;
    uint64_t next_probe_at = 0;
    uint64_t probe_backoff = 0;
  };

  void SendAck(int node, uint64_t now, FaultyChannel& ack_tx);
  /// Merges the scoped node sketches (node-id order) into a fresh sketch,
  /// filling the answer's coverage fields. nullptr when nothing merged.
  std::unique_ptr<QuantileSketch> MergeScope(uint64_t now, QueryScope scope,
                                             ClusterAnswer* answer);

  ClusterCoordinatorOptions options_;
  /// Empty sketch from the shared config: the merge-compatibility
  /// reference for rung 6 and the prototype of every query scratch.
  std::unique_ptr<QuantileSketch> reference_;
  std::vector<NodeView> views_;
  ClusterCoordinatorStats stats_;
};

}  // namespace streamq::cluster

#endif  // STREAMQ_CLUSTER_COORDINATOR_H_
