#include "cluster/ingest_node.h"

#include <algorithm>
#include <utility>

#include "cluster/wire.h"
#include "distributed/ack.h"
#include "obs/trace.h"
#include "quantile/factory.h"

#if STREAMQ_DURABILITY_ENABLED
#include "durability/storage.h"
#endif

namespace streamq::cluster {

namespace {

std::string MetaPath(const ingest::IngestOptions& options) {
  return options.durability.dir + "/node-meta.sq";
}

}  // namespace

std::unique_ptr<IngestNode> IngestNode::Create(
    const IngestNodeOptions& options) {
  auto pipeline = ingest::IngestPipeline::Create(options.pipeline);
  if (pipeline == nullptr) return nullptr;
  std::unique_ptr<IngestNode> node(
      new IngestNode(options, std::move(pipeline)));
#if STREAMQ_DURABILITY_ENABLED
  const durability::DurabilityOptions& d = options.pipeline.durability;
  if (d.enabled && d.storage != nullptr) {
    // Resume the epoch horizon above everything a previous incarnation may
    // have put on the wire. A missing or corrupt meta record degrades to
    // horizon 0: the coordinator's first ack fast-forwards us.
    std::string bytes;
    NodeMeta meta;
    if (d.storage->ReadFile(MetaPath(options.pipeline), &bytes) &&
        DecodeNodeMeta(bytes, &meta) && meta.node == options.node) {
      node->last_sent_epoch_ = meta.last_sent_epoch;
      node->last_acked_epoch_ = meta.last_sent_epoch;
    }
  }
#endif
  if (node->pipeline_->recovery().recovered) {
    // Re-offer the recovered state proactively instead of waiting for the
    // count trigger or a coordinator probe.
    node->needs_reship_ = true;
    STREAMQ_TRACE_INSTANT(obs::TracePoint::kClusterRecover, options.node);
  }
  return node;
}

IngestNode::IngestNode(const IngestNodeOptions& options,
                       std::unique_ptr<ingest::IngestPipeline> pipeline)
    : options_(options), pipeline_(std::move(pipeline)) {}

IngestNode::~IngestNode() = default;

uint64_t IngestNode::ObservedCount() const {
  return (pipeline_->ResumeSeq() - 1) + pipeline_->PushedCount();
}

void IngestNode::Observe(const Update& update, uint64_t now,
                         FaultyChannel& tx) {
  pipeline_->Push(update);
  const uint64_t grown = static_cast<uint64_t>(
      options_.theta * static_cast<double>(last_shipped_count_));
  const uint64_t trigger = last_shipped_count_ + std::max<uint64_t>(1, grown);
  if (ObservedCount() >= trigger) Ship(now, tx, /*retransmit=*/false);
}

void IngestNode::Ship(uint64_t now, FaultyChannel& tx, bool retransmit) {
  // Flush so the view -- hence the clone -- covers every observed update;
  // the shipped count then equals ObservedCount() and the coordinator's
  // per-node staleness is exact at ship time.
  pipeline_->Flush();
  uint64_t count = 0;
  std::unique_ptr<QuantileSketch> clone = pipeline_->CloneView(&count);
  if (clone == nullptr) return;  // nothing published yet; nothing to say
  STREAMQ_TRACE_SPAN(obs::TracePoint::kClusterShip, last_sent_epoch_ + 1);
  ClusterShipment shipment;
  shipment.node = options_.node;
  shipment.epoch = ++last_sent_epoch_;
  shipment.durable_seq = pipeline_->DurableSeq();
  shipment.count = count;
  shipment.sketch_frame = SerializeSketch(*clone);
  // Persist the new horizon BEFORE the bytes can reach the wire: a crash
  // between the two leaves a burned epoch, never a reused one.
  PersistMeta();
  tx.Send(now, EncodeShipment(shipment));
  last_shipped_count_ = ObservedCount();
  needs_reship_ = false;
  if (retransmit) {
    backoff_ = std::min(
        std::max(backoff_, options_.retry.initial_backoff) * 2,
        options_.retry.max_backoff);
    ++stats_.retransmits;
  } else {
    backoff_ = options_.retry.initial_backoff;
  }
  next_retry_at_ = now + backoff_;
  ++stats_.shipments;
}

void IngestNode::HandleAck(const std::string& bytes) {
  AckFrame ack;
  if (!DecodeAck(SnapshotType::kClusterAck, bytes, &ack) ||
      ack.node != options_.node) {
    ++stats_.rejected_acks;
    return;
  }
  if (ack.seq > last_sent_epoch_) {
    // The coordinator has accepted epochs this incarnation never issued:
    // state from a pre-crash life. Fast-forward past its horizon and
    // re-ship so the next accepted epoch is provably newer.
    last_sent_epoch_ = ack.seq;
    last_acked_epoch_ = ack.seq;
    needs_reship_ = true;
    PersistMeta();
  } else if (ack.seq > last_acked_epoch_) {
    last_acked_epoch_ = ack.seq;
  }
  if ((ack.flags & kAckFlagReship) != 0) needs_reship_ = true;
}

void IngestNode::Tick(uint64_t now, FaultyChannel& tx) {
  if (needs_reship_ || (HasUnacked() && now >= next_retry_at_)) {
    Ship(now, tx, /*retransmit=*/true);
  }
}

void IngestNode::ShipComplete(uint64_t now, FaultyChannel& tx) {
  Ship(now, tx, /*retransmit=*/false);
}

void IngestNode::PersistMeta() {
#if STREAMQ_DURABILITY_ENABLED
  const durability::DurabilityOptions& d = options_.pipeline.durability;
  if (!d.enabled || d.storage == nullptr) return;
  NodeMeta meta;
  meta.node = options_.node;
  meta.last_sent_epoch = last_sent_epoch_;
  meta.durable_seq = pipeline_->DurableSeq();
  // Best effort: on dead storage (post-crash) this fails harmlessly and
  // the next incarnation resyncs via the ack fast-forward instead.
  durability::AtomicWriteFile(*d.storage, MetaPath(options_.pipeline),
                              EncodeNodeMeta(meta));
#endif
}

}  // namespace streamq::cluster
