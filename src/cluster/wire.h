// Wire format of the cluster data path (DESIGN.md section 13).
//
// Two record types cross process boundaries:
//
//  * ClusterShipment (node -> coordinator): an epoch-numbered, cumulative
//    snapshot of one node's full merged sketch. Epochs play the role the
//    monitor tier's per-site sequence numbers play -- monotone per node,
//    fresh on every (re)transmission -- so the coordinator can dedup
//    duplicates and discard stale reorders while any single delivery
//    brings it fully up to date.
//  * NodeMeta (node -> its own durable directory, never the network): the
//    tiny epoch <-> ack-mark record a node persists beside its WAL so a
//    restarted incarnation resumes issuing epochs above everything a
//    previous life may have put on the wire. Losing it is safe -- the
//    coordinator's acks fast-forward a behind-the-horizon node -- it only
//    short-circuits that round trip.
//
// Both are CRC32C-framed snapshots (util/serde.h): a flipped byte anywhere
// fails the frame check before a single payload byte is interpreted. The
// shipment's sketch bytes are themselves a nested SerializeSketch frame,
// so the payload is double-checksummed end to end.

#ifndef STREAMQ_CLUSTER_WIRE_H_
#define STREAMQ_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>

namespace streamq::cluster {

/// One cumulative node snapshot. `count` duplicates the sketch's Count()
/// so the coordinator can cross-check the decoded sketch against the
/// sender's claim before installing it.
struct ClusterShipment {
  uint32_t node = 0;
  uint64_t epoch = 0;        ///< monotone per node; 0 never shipped
  uint64_t durable_seq = 0;  ///< node's ack mark at ship time (0 = none)
  uint64_t count = 0;        ///< sketch Count() at ship time
  std::string sketch_frame;  ///< SerializeSketch() of the node's view
};

std::string EncodeShipment(const ClusterShipment& shipment);

/// Full frame validation then an exact payload parse; false -- leaving
/// *out untouched -- on any corruption or trailing bytes.
bool DecodeShipment(const std::string& bytes, ClusterShipment* out);

/// Per-node durable meta record (stored at "<node dir>/node-meta.sq").
struct NodeMeta {
  uint32_t node = 0;
  uint64_t last_sent_epoch = 0;
  uint64_t durable_seq = 0;  ///< ack mark when the epoch was persisted
};

std::string EncodeNodeMeta(const NodeMeta& meta);
bool DecodeNodeMeta(const std::string& bytes, NodeMeta* out);

}  // namespace streamq::cluster

#endif  // STREAMQ_CLUSTER_WIRE_H_
