#include "util/serde.h"

#include "util/crc32c.h"

namespace streamq {

std::string FrameSnapshot(SnapshotType type, const std::string& payload) {
  SerdeWriter w;
  w.U32(kFrameMagic);
  uint32_t ver_type = kFrameVersion |
                      (static_cast<uint32_t>(static_cast<uint16_t>(type)) << 16);
  w.U32(ver_type);
  w.U64(payload.size());
  w.U32(Crc32c(payload.data(), payload.size()));
  std::string out = w.Take();
  out += payload;
  return out;
}

namespace {

struct FrameHeader {
  SnapshotType type;
  uint64_t payload_len;
  uint32_t crc;
};

bool ParseHeader(const std::string& frame, FrameHeader* h) {
  if (frame.size() < kFrameHeaderBytes) return false;
  SerdeReader r(frame);
  uint32_t magic = 0, ver_type = 0, crc = 0;
  uint64_t len = 0;
  if (!r.U32(&magic) || !r.U32(&ver_type) || !r.U64(&len) || !r.U32(&crc)) {
    return false;
  }
  if (magic != kFrameMagic) return false;
  if ((ver_type & 0xFFFF) != kFrameVersion) return false;
  h->type = static_cast<SnapshotType>(ver_type >> 16);
  h->payload_len = len;
  h->crc = crc;
  return true;
}

}  // namespace

bool UnframeSnapshot(const std::string& frame, SnapshotType expected,
                     std::string* payload) {
  FrameHeader h{};
  if (!ParseHeader(frame, &h)) return false;
  if (h.type != expected) return false;
  // The declared payload length must match the buffer exactly: truncated and
  // padded frames are both rejected, and no allocation ever exceeds the
  // bytes actually present.
  if (h.payload_len != frame.size() - kFrameHeaderBytes) return false;
  const char* data = frame.data() + kFrameHeaderBytes;
  if (Crc32c(data, static_cast<size_t>(h.payload_len)) != h.crc) return false;
  payload->assign(data, static_cast<size_t>(h.payload_len));
  return true;
}

bool PeekSnapshotType(const std::string& frame, SnapshotType* type) {
  FrameHeader h{};
  if (!ParseHeader(frame, &h)) return false;
  if (h.payload_len != frame.size() - kFrameHeaderBytes) return false;
  *type = h.type;
  return true;
}

}  // namespace streamq
