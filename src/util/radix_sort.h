// LSD radix sort for uint64 keys.
//
// The sample-based quantile summaries (Random, MRL99) sort one buffer of a
// few hundred uniformly random elements per buffer fill; profiling the
// batched ingest path shows std::sort of those buffers dominating the whole
// per-item budget (DESIGN.md section 14). A least-significant-digit radix
// sort with 8-bit digits replaces the O(n log n) comparison sort with a few
// linear passes, and an up-front OR/AND scan skips every digit position on
// which all keys agree -- for d-bit universes only ceil(d/8) passes run, so
// the cost tracks the universe width rather than always touching all eight
// bytes.
//
// Output contract: ascending order. For uint64 keys equal elements are
// indistinguishable, so the result is bit-identical to std::sort -- callers
// that serialize sorted buffers get byte-for-byte the same summary no
// matter which sort produced it.

#ifndef STREAMQ_UTIL_RADIX_SORT_H_
#define STREAMQ_UTIL_RADIX_SORT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace streamq {

/// Sorts data[0..n) ascending. `scratch` must hold at least n elements and
/// is clobbered. Small inputs fall back to std::sort (the histogram setup
/// would dominate); either path yields the identical ascending sequence.
inline void RadixSortU64(uint64_t* data, size_t n, uint64_t* scratch) {
  constexpr size_t kSmall = 64;
  if (n < kSmall) {
    std::sort(data, data + n);
    return;
  }
  // Digits where every key agrees cannot change the order; find the rest.
  uint64_t all_or = 0, all_and = ~uint64_t{0};
  for (size_t i = 0; i < n; ++i) {
    all_or |= data[i];
    all_and &= data[i];
  }
  const uint64_t diff = all_or ^ all_and;
  int digits[8];
  int nd = 0;
  for (int d = 0; d < 8; ++d) {
    if ((diff >> (8 * d)) & 0xFF) digits[nd++] = d;
  }
  if (nd == 0) return;  // all keys equal

  // One pass builds the histograms of every active digit.
  uint32_t hist[8][256] = {};
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = data[i];
    for (int j = 0; j < nd; ++j) {
      ++hist[j][(v >> (8 * digits[j])) & 0xFF];
    }
  }

  // Stable counting passes, least significant active digit first,
  // ping-ponging between data and scratch.
  uint64_t* src = data;
  uint64_t* dst = scratch;
  for (int j = 0; j < nd; ++j) {
    const int shift = 8 * digits[j];
    uint32_t offsets[256];
    uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += hist[j][b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[offsets[(src[i] >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

/// Sorts data[0..n) ascending by key(element), where key returns uint64.
/// Stable. `scratch` must hold at least n elements and is clobbered. Same
/// structure as RadixSortU64; used for (value, weight) pairs whose key is
/// the value. For callers whose downstream result depends only on the key
/// order (equal keys interchangeable), the output is equivalent to any
/// comparison sort by key.
template <typename Elem, typename KeyFn>
inline void RadixSortByKeyU64(Elem* data, size_t n, Elem* scratch,
                              KeyFn key) {
  constexpr size_t kSmall = 64;
  if (n < kSmall) {
    // stable_sort, not sort: the stability promise must hold on every path.
    std::stable_sort(
        data, data + n,
        [&](const Elem& a, const Elem& b) { return key(a) < key(b); });
    return;
  }
  uint64_t all_or = 0, all_and = ~uint64_t{0};
  for (size_t i = 0; i < n; ++i) {
    all_or |= key(data[i]);
    all_and &= key(data[i]);
  }
  const uint64_t diff = all_or ^ all_and;
  int digits[8];
  int nd = 0;
  for (int d = 0; d < 8; ++d) {
    if ((diff >> (8 * d)) & 0xFF) digits[nd++] = d;
  }
  if (nd == 0) return;

  uint32_t hist[8][256] = {};
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = key(data[i]);
    for (int j = 0; j < nd; ++j) {
      ++hist[j][(v >> (8 * digits[j])) & 0xFF];
    }
  }

  Elem* src = data;
  Elem* dst = scratch;
  for (int j = 0; j < nd; ++j) {
    const int shift = 8 * digits[j];
    uint32_t offsets[256];
    uint32_t sum = 0;
    for (int b = 0; b < 256; ++b) {
      offsets[b] = sum;
      sum += hist[j][b];
    }
    for (size_t i = 0; i < n; ++i) {
      dst[offsets[(key(src[i]) >> shift) & 0xFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

}  // namespace streamq

#endif  // STREAMQ_UTIL_RADIX_SORT_H_
