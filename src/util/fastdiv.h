// Exact division-free modulus by a fixed runtime divisor.
//
// The dyadic sketches reduce a 64-bit hash into [0, width) with `h % width`
// on every counter touch -- depth x log U of them per update -- and a
// 64-bit hardware divide costs tens of unpipelined cycles. This header
// precomputes the divisor's 128-bit reciprocal once at construction and
// turns each modulus into four pipelined multiplies (Granlund-Montgomery /
// Lemire "fastmod"). The result is EXACTLY x % d for every 64-bit x, so
// swapping it in changes no bucket assignment anywhere: item-wise Locate,
// batched update, and query paths keep agreeing bit for bit.

#ifndef STREAMQ_UTIL_FASTDIV_H_
#define STREAMQ_UTIL_FASTDIV_H_

#include <cstdint>

namespace streamq {

/// Precomputed x % d for a fixed d >= 1. Trivially copyable; rebuild it
/// after deserialisation instead of storing it (it is pure function of d).
class FastMod64 {
 public:
  FastMod64() : FastMod64(1) {}
  explicit FastMod64(uint64_t d)
      : c_(~static_cast<unsigned __int128>(0) / d + 1), d_(d) {}

  uint64_t divisor() const { return d_; }

  /// Exactly x % divisor(), for any 64-bit x.
  uint64_t Mod(uint64_t x) const {
    // lowbits = frac(x / d) in 0.128 fixed point; multiplying by d and
    // taking the integer part recovers the remainder (exact for d < 2^64:
    // the 128-bit reciprocal's rounding error is below one ulp of the
    // product).
    const unsigned __int128 lowbits = c_ * x;
    const uint64_t lo = static_cast<uint64_t>(lowbits);
    const uint64_t hi = static_cast<uint64_t>(lowbits >> 64);
    const uint64_t bottom = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(lo) * d_) >> 64);
    return static_cast<uint64_t>(
        ((static_cast<unsigned __int128>(hi) * d_) + bottom) >> 64);
  }

 private:
  unsigned __int128 c_;  // floor((2^128 - 1) / d) + 1
  uint64_t d_;
};

}  // namespace streamq

#endif  // STREAMQ_UTIL_FASTDIV_H_
