// Small bit-manipulation helpers shared across the library.

#ifndef STREAMQ_UTIL_BITS_H_
#define STREAMQ_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace streamq {

/// floor(log2(x)) for x >= 1.
constexpr int FloorLog2(uint64_t x) {
  return 63 - std::countl_zero(x | 1);
}

/// ceil(log2(x)) for x >= 1; CeilLog2(1) == 0.
constexpr int CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : 64 - std::countl_zero(x - 1);
}

/// True iff x is a power of two (x > 0).
constexpr bool IsPowerOfTwo(uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace streamq

#endif  // STREAMQ_UTIL_BITS_H_
