// k-wise independent hash families over the Mersenne prime p = 2^61 - 1.
//
// The turnstile sketches in this library need precisely the independence
// guarantees their analyses assume:
//   * Count-Min rows: pairwise independent bucket hash.
//   * Count-Sketch rows: pairwise independent bucket hash plus a 4-wise
//     independent {-1,+1} sign hash (the unbiasedness and variance analysis
//     of Charikar-Chen-Farach-Colton requires 4-wise independence).
//   * Random-subset-sum: pairwise independent subset membership.
//
// We use the classic Carter-Wegman polynomial construction
//   h(x) = ((a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod p) mod m
// with p = 2^61 - 1, evaluated with 128-bit arithmetic and the standard
// fast reduction for Mersenne primes.

#ifndef STREAMQ_UTIL_HASH_H_
#define STREAMQ_UTIL_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/simd.h"

namespace streamq {

/// The Mersenne prime 2^61 - 1 used as the field size for polynomial hashing.
inline constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 - 1.
inline uint64_t ReduceMersenne61(__uint128_t x) {
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

/// Degree-(K-1) polynomial hash over GF(2^61 - 1): a K-wise independent
/// family. K = 2 gives pairwise independence, K = 4 gives 4-wise.
template <int K>
class PolyHash {
 public:
  PolyHash() : coeff_{} {}

  /// Draws random coefficients from the given seed. The leading coefficients
  /// are uniform in [0, p); the family is K-wise independent over inputs
  /// smaller than p (all our universes are <= 2^32 << p).
  explicit PolyHash(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& c : coeff_) {
      // SplitMix output is uniform over 2^64; reduce to [0, p). The modulo
      // bias is ~2^-61 and irrelevant for independence at our scale.
      c = Expand(&sm) % kMersenne61;
    }
  }

  /// Evaluates the polynomial at x; result uniform in [0, 2^61 - 1).
  uint64_t operator()(uint64_t x) const {
    uint64_t acc = coeff_[K - 1];
    for (int i = K - 2; i >= 0; --i) {
      acc = ReduceMersenne61(static_cast<__uint128_t>(acc) * x + coeff_[i]);
    }
    return acc;
  }

  /// Evaluates the polynomial at x[0..n); out[i] == operator()(x[i])
  /// bit-for-bit. K = 2 and K = 4 dispatch to the vectorized kernels in
  /// util/simd.h (AVX2 when the host supports it, scalar otherwise).
  void EvalBatch(const uint64_t* x, uint64_t* out, size_t n) const {
    if constexpr (K == 2) {
      simd::PolyEvalBatch2(coeff_.data(), x, out, n);
    } else if constexpr (K == 4) {
      simd::PolyEvalBatch4(coeff_.data(), x, out, n);
    } else {
      for (size_t i = 0; i < n; ++i) out[i] = (*this)(x[i]);
    }
  }

 private:
  static uint64_t Expand(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::array<uint64_t, K> coeff_;
};

/// Pairwise independent hash into [0, buckets).
class BucketHash {
 public:
  BucketHash() : buckets_(1) {}
  BucketHash(uint64_t seed, uint64_t buckets)
      : poly_(seed), buckets_(buckets) {}

  uint64_t operator()(uint64_t x) const { return poly_(x) % buckets_; }
  uint64_t buckets() const { return buckets_; }

  /// The underlying field-valued polynomial, for batch evaluation: callers
  /// apply `% buckets()` themselves after PolyHash::EvalBatch.
  const PolyHash<2>& poly() const { return poly_; }

 private:
  PolyHash<2> poly_;
  uint64_t buckets_;
};

/// 4-wise independent sign hash into {-1, +1}.
class SignHash {
 public:
  SignHash() = default;
  explicit SignHash(uint64_t seed) : poly_(seed) {}

  int operator()(uint64_t x) const { return (poly_(x) & 1) ? 1 : -1; }

 private:
  PolyHash<4> poly_;
};

/// Pairwise independent membership in a random half of the universe
/// (used by the random-subset-sum sketch).
class SubsetHash {
 public:
  SubsetHash() = default;
  explicit SubsetHash(uint64_t seed) : poly_(seed) {}

  bool operator()(uint64_t x) const { return (poly_(x) & 1) != 0; }

 private:
  PolyHash<2> poly_;
};

}  // namespace streamq

#endif  // STREAMQ_UTIL_HASH_H_
