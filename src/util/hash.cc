#include "util/hash.h"

// Header-only templates; this TU exists to give the library a home for the
// hash module and to force a compile of the header in isolation.

namespace streamq {

template class PolyHash<2>;
template class PolyHash<4>;

}  // namespace streamq
