// Order-preserving mapping between IEEE-754 floating point values and
// unsigned integers.
//
// Footnote 1 of the paper: "floating-point numbers in standard
// representations (e.g. IEEE 754) can be mapped to integers in a fixed
// universe in an order-preserving fashion" -- which is what lets the
// fixed-universe algorithms (FastQDigest, DCM, DCS) summarise float
// streams. The classic trick: reinterpret the bits; for non-negative
// floats flip the sign bit, for negative floats flip all bits. Total order
// matches the numeric order (with -0.0 < +0.0 and NaNs ordered above
// +inf / below -inf by payload, which is fine for quantile purposes as
// long as the stream is NaN-free).

#ifndef STREAMQ_UTIL_FLOAT_ORDER_H_
#define STREAMQ_UTIL_FLOAT_ORDER_H_

#include <bit>
#include <cstdint>

namespace streamq {

/// Maps a double to a uint64 such that a < b iff OrderedFromDouble(a) <
/// OrderedFromDouble(b) (for non-NaN inputs).
inline uint64_t OrderedFromDouble(double value) {
  uint64_t bits = std::bit_cast<uint64_t>(value);
  if (bits & (1ULL << 63)) {
    return ~bits;  // negative: reverse order and move below positives
  }
  return bits | (1ULL << 63);  // non-negative: shift above negatives
}

/// Inverse of OrderedFromDouble.
inline double DoubleFromOrdered(uint64_t ordered) {
  if (ordered & (1ULL << 63)) {
    return std::bit_cast<double>(ordered & ~(1ULL << 63));
  }
  return std::bit_cast<double>(~ordered);
}

/// Same mapping for float / uint32.
inline uint32_t OrderedFromFloat(float value) {
  uint32_t bits = std::bit_cast<uint32_t>(value);
  if (bits & (1U << 31)) {
    return ~bits;
  }
  return bits | (1U << 31);
}

/// Inverse of OrderedFromFloat.
inline float FloatFromOrdered(uint32_t ordered) {
  if (ordered & (1U << 31)) {
    return std::bit_cast<float>(ordered & ~(1U << 31));
  }
  return std::bit_cast<float>(~ordered);
}

}  // namespace streamq

#endif  // STREAMQ_UTIL_FLOAT_ORDER_H_
