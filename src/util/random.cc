#include "util/random.h"

#include <cmath>

namespace streamq {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // All-zero state is invalid for xoshiro; the SplitMix expansion of any seed
  // cannot produce it, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Xoshiro256::Below(uint64_t bound) {
  // Lemire (2019): unbiased bounded integers without division in the common
  // case.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace streamq
