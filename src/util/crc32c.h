// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum used by the framed snapshot format (util/serde.h). CRC32C detects
// every single-bit and single-byte error and all burst errors up to 32 bits,
// which is exactly the failure mode a lossy/corrupting transport introduces.
//
// Software slice-by-4 table implementation: no SSE4.2 dependency, fast
// enough for snapshot-sized payloads (KBs, not GBs).

#ifndef STREAMQ_UTIL_CRC32C_H_
#define STREAMQ_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace streamq {

/// CRC32C of `size` bytes at `data`, seeded with `crc` (pass 0 for a fresh
/// checksum; chain calls to checksum discontiguous regions).
uint32_t Crc32c(const void* data, size_t size, uint32_t crc = 0);

}  // namespace streamq

#endif  // STREAMQ_UTIL_CRC32C_H_
