// Deterministic pseudo-random number generation for streamq.
//
// All randomness in the library flows through Xoshiro256ss seeded from an
// explicit 64-bit seed, so every experiment is reproducible bit-for-bit.
// std::mt19937 is deliberately avoided: its state is large (2.5 KB) and we
// account for sketch memory at byte granularity.

#ifndef STREAMQ_UTIL_RANDOM_H_
#define STREAMQ_UTIL_RANDOM_H_

#include <cstdint>

namespace streamq {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state
/// and to derive independent sub-seeds for sketch rows / levels.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** by Blackman & Vigna: small (32 bytes of state), fast, and of
/// more than sufficient quality for sampling decisions in sketches.
class Xoshiro256 {
 public:
  /// Seeds the four state words via SplitMix64 as the authors recommend.
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next 64 uniform random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  uint64_t Below(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fair coin flip.
  bool NextBool() { return (Next() >> 63) != 0; }

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double NextGaussian();

  /// Snapshot / restore of the full generator state (for sketch
  /// serialisation: a reloaded sketch continues the exact random sequence).
  struct State {
    uint64_t s[4];
    double spare;
    bool has_spare;
  };
  State GetState() const { return State{{s_[0], s_[1], s_[2], s_[3]}, spare_, has_spare_}; }
  void SetState(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    spare_ = state.spare;
    has_spare_ = state.has_spare;
  }

 private:
  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_UTIL_RANDOM_H_
