// Deterministic pseudo-random number generation for streamq.
//
// All randomness in the library flows through Xoshiro256ss seeded from an
// explicit 64-bit seed, so every experiment is reproducible bit-for-bit.
// std::mt19937 is deliberately avoided: its state is large (2.5 KB) and we
// account for sketch memory at byte granularity.

#ifndef STREAMQ_UTIL_RANDOM_H_
#define STREAMQ_UTIL_RANDOM_H_

#include <cstdint>
#include <cstring>

namespace streamq {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state
/// and to derive independent sub-seeds for sketch rows / levels.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** by Blackman & Vigna: small (32 bytes of state), fast, and of
/// more than sufficient quality for sampling decisions in sketches.
class Xoshiro256 {
 public:
  /// Seeds the four state words via SplitMix64 as the authors recommend.
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next 64 uniform random bits. Inline: this sits on the per-block hot
  /// path of the sample-based summaries (Random / MRL99 batch ingest).
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (no modulo bias).
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [0, 2^log2_bound); requires log2_bound < 64.
  /// Bit-identical to Below(1 << log2_bound) -- for a power-of-two bound
  /// Lemire's multiply-shift is exactly the top log2_bound bits of one
  /// Next() draw and the rejection threshold (-b mod b) is zero, so exactly
  /// one Next() is consumed and the loop can never fire. Inline so the
  /// per-sampling-block draw of the sample-based summaries stays branchless.
  uint64_t BelowPow2(unsigned log2_bound) {
    const uint64_t x = Next();
    return log2_bound == 0 ? 0 : x >> (64 - log2_bound);
  }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fair coin flip.
  bool NextBool() { return (Next() >> 63) != 0; }

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double NextGaussian();

  /// Snapshot / restore of the full generator state (for sketch
  /// serialisation: a reloaded sketch continues the exact random sequence).
  struct State {
    uint64_t s[4];
    double spare;
    bool has_spare;
  };
  State GetState() const {
    // Zero the whole struct first: State has trailing padding, and the
    // sketches serialize it with a raw byte copy -- aggregate
    // initialization leaves the padding indeterminate, which made two
    // identically-fed sketches serialize to different bytes.
    State state;
    std::memset(&state, 0, sizeof(state));
    for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
    state.spare = spare_;
    state.has_spare = has_spare_;
    return state;
  }
  void SetState(const State& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
    spare_ = state.spare;
    has_spare_ = state.has_spare;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace streamq

#endif  // STREAMQ_UTIL_RANDOM_H_
