#include "util/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace streamq::simd {
namespace {

// Mirrors util/hash.h: p = 2^61 - 1, reduction truncates the 128-bit value
// to (low 61 bits) + (bits 61..124) and applies ONE conditional subtract.
// The result may still sit in [p, 2p) for pathological inputs; PolyHash
// feeds it straight into the next Horner step, so the kernels must too.
constexpr uint64_t kP61 = (uint64_t{1} << 61) - 1;

inline uint64_t Reduce61(__uint128_t x) {
  const uint64_t lo = static_cast<uint64_t>(x) & kP61;
  const uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kP61) r -= kP61;
  return r;
}

std::atomic<bool> g_force_scalar{false};

bool EnvForceScalar() {
  const char* env = std::getenv("STREAMQ_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0';
}

bool DetectAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool DetectAvx512() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

bool ForcedScalar() {
  static const bool env_forced = EnvForceScalar();
  return env_forced || g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace

bool CpuHasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

bool CpuHasAvx512() {
  static const bool has = DetectAvx512();
  return has;
}

void SetForceScalar(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool Avx2Active() { return !ForcedScalar() && CpuHasAvx2(); }

bool Avx512Active() { return !ForcedScalar() && CpuHasAvx512(); }

void PolyEvalBatch2Scalar(const uint64_t* coeff, const uint64_t* x,
                          uint64_t* out, size_t n) {
  const uint64_t c0 = coeff[0];
  const uint64_t c1 = coeff[1];
  for (size_t i = 0; i < n; ++i) {
    out[i] = Reduce61(static_cast<__uint128_t>(c1) * x[i] + c0);
  }
}

void PolyEvalBatch4Scalar(const uint64_t* coeff, const uint64_t* x,
                          uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = x[i];
    uint64_t acc = coeff[3];
    acc = Reduce61(static_cast<__uint128_t>(acc) * v + coeff[2]);
    acc = Reduce61(static_cast<__uint128_t>(acc) * v + coeff[1]);
    acc = Reduce61(static_cast<__uint128_t>(acc) * v + coeff[0]);
    out[i] = acc;
  }
}

size_t DecimateStrideScalar(const uint64_t* in, size_t n, size_t offset,
                            size_t stride, uint64_t* out, size_t max_out) {
  size_t written = 0;
  for (size_t i = offset; i < n && written < max_out; i += stride) {
    out[written++] = in[i];
  }
  return written;
}

void SliceBucketSignScalar(const uint64_t* h, uint64_t* out, size_t n,
                           unsigned shift, unsigned lg_width) {
  const uint64_t wm = (uint64_t{1} << lg_width) - 1;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t u = h[i] >> shift;
    out[i] = (u & wm) | ((~(u >> lg_width) & 1) << 63);
  }
}

#if defined(__x86_64__)

namespace {

// Lane-wise helpers for the AVX2 kernels. AVX2 has no 64x64->128 multiply
// and no unsigned 64-bit compare, so both are synthesized: the product from
// four vpmuludq 32x32 partials with explicit carries, the compare by
// flipping sign bits and using the signed compare.

__attribute__((target("avx2"))) inline __m256i CmpGeU64(__m256i a,
                                                        __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  const __m256i sa = _mm256_xor_si256(a, bias);
  const __m256i sb = _mm256_xor_si256(b, bias);
  // a >= b  <=>  !(b > a)
  const __m256i lt = _mm256_cmpgt_epi64(sb, sa);
  return _mm256_xor_si256(lt, _mm256_set1_epi64x(-1));
}

__attribute__((target("avx2"))) inline __m256i CmpLtU64(__m256i a,
                                                        __m256i b) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                            _mm256_xor_si256(a, bias));
}

// Narrow-operand Horner step: requires every lane of x < 2^32. The full
// product acc * x is then just ll + (hl << 32) from two 32x32 partials --
// the same 128-bit integer the four-partial path computes, so the result
// stays bit-identical -- at roughly half the multiply cost.
__attribute__((target("avx2"))) inline __m256i HornerStepNarrowAvx2(
    __m256i acc, __m256i x, __m256i c) {
  const __m256i m32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i ll = _mm256_mul_epu32(acc, x);                       // lo*x
  const __m256i hl = _mm256_mul_epu32(_mm256_srli_epi64(acc, 32), x);  // hi*x
  // t = hl + (ll >> 32) never wraps: hl <= (2^32-1)^2, ll >> 32 < 2^32.
  const __m256i t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
  __m256i hi = _mm256_srli_epi64(t, 32);
  const __m256i lo0 = _mm256_or_si256(_mm256_slli_epi64(t, 32),
                                      _mm256_and_si256(ll, m32));
  // + c (c < 2^61 fits the low word; carry feeds the high word).
  const __m256i lo = _mm256_add_epi64(lo0, c);
  const __m256i add_carry = CmpLtU64(lo, lo0);
  hi = _mm256_sub_epi64(hi, add_carry);  // mask is -1 where set: minus adds 1
  // Reduce61, same as the wide step.
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kP61));
  const __m256i low_bits = _mm256_and_si256(lo, p);
  const __m256i high_bits = _mm256_or_si256(_mm256_srli_epi64(lo, 61),
                                            _mm256_slli_epi64(hi, 3));
  __m256i r = _mm256_add_epi64(low_bits, high_bits);
  const __m256i ge = CmpGeU64(r, p);
  return _mm256_sub_epi64(r, _mm256_and_si256(ge, p));
}

// One Horner step per lane: reduce61(acc * x + c), matching Reduce61 above
// bit-for-bit (same mod-2^64 truncations, one conditional subtract).
__attribute__((target("avx2"))) inline __m256i HornerStepAvx2(__m256i acc,
                                                              __m256i x,
                                                              __m256i c) {
  // 128-bit product acc * x from 32-bit partials.
  const __m256i acc_hi = _mm256_srli_epi64(acc, 32);
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i ll = _mm256_mul_epu32(acc, x);        // lo(acc)*lo(x)
  const __m256i lh = _mm256_mul_epu32(acc, x_hi);     // lo(acc)*hi(x)
  const __m256i hl = _mm256_mul_epu32(acc_hi, x);     // hi(acc)*lo(x)
  const __m256i hh = _mm256_mul_epu32(acc_hi, x_hi);  // hi(acc)*hi(x)

  // cross = lh + hl, with its carry worth 2^96 (= 2^32 in the high word).
  const __m256i cross = _mm256_add_epi64(lh, hl);
  const __m256i cross_carry = CmpLtU64(cross, lh);  // all-ones where carry
  const __m256i one_shl32 = _mm256_set1_epi64x(1LL << 32);

  // lo64 = ll + (cross << 32); carry feeds the high word.
  const __m256i cross_lo = _mm256_slli_epi64(cross, 32);
  __m256i lo = _mm256_add_epi64(ll, cross_lo);
  const __m256i lo_carry = CmpLtU64(lo, ll);

  // hi64 = hh + (cross >> 32) + cross_carry*2^32 + lo_carry.
  __m256i hi = _mm256_add_epi64(hh, _mm256_srli_epi64(cross, 32));
  hi = _mm256_add_epi64(hi,
                        _mm256_and_si256(cross_carry, one_shl32));
  hi = _mm256_sub_epi64(hi, lo_carry);  // mask is -1 where set: minus adds 1

  // + c (c < 2^61, fits the low word; carry feeds the high word).
  const __m256i lo2 = _mm256_add_epi64(lo, c);
  const __m256i add_carry = CmpLtU64(lo2, lo);
  hi = _mm256_sub_epi64(hi, add_carry);

  // Reduce61: r = (v & p) + ((v >> 61) mod 2^64); one conditional subtract.
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kP61));
  const __m256i low_bits = _mm256_and_si256(lo2, p);
  const __m256i high_bits = _mm256_or_si256(_mm256_srli_epi64(lo2, 61),
                                            _mm256_slli_epi64(hi, 3));
  __m256i r = _mm256_add_epi64(low_bits, high_bits);
  const __m256i ge = CmpGeU64(r, p);
  r = _mm256_sub_epi64(r, _mm256_and_si256(ge, p));
  return r;
}

}  // namespace

// True when every lane of v fits 32 bits, enabling the narrow Horner step.
__attribute__((target("avx2"))) inline bool AllNarrowAvx2(__m256i v) {
  const __m256i wide = CmpGeU64(v, _mm256_set1_epi64x(1LL << 32));
  return _mm256_movemask_epi8(wide) == 0;
}

__attribute__((target("avx2"))) void PolyEvalBatch2Avx2(const uint64_t* coeff,
                                                        const uint64_t* x,
                                                        uint64_t* out,
                                                        size_t n) {
  const __m256i c0 = _mm256_set1_epi64x(static_cast<long long>(coeff[0]));
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(coeff[1]));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i r = AllNarrowAvx2(v) ? HornerStepNarrowAvx2(c1, v, c0)
                                       : HornerStepAvx2(c1, v, c0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), r);
  }
  if (i < n) PolyEvalBatch2Scalar(coeff, x + i, out + i, n - i);
}

__attribute__((target("avx2"))) void PolyEvalBatch4Avx2(const uint64_t* coeff,
                                                        const uint64_t* x,
                                                        uint64_t* out,
                                                        size_t n) {
  const __m256i c0 = _mm256_set1_epi64x(static_cast<long long>(coeff[0]));
  const __m256i c1 = _mm256_set1_epi64x(static_cast<long long>(coeff[1]));
  const __m256i c2 = _mm256_set1_epi64x(static_cast<long long>(coeff[2]));
  const __m256i c3 = _mm256_set1_epi64x(static_cast<long long>(coeff[3]));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    __m256i acc;
    if (AllNarrowAvx2(v)) {
      acc = HornerStepNarrowAvx2(c3, v, c2);
      acc = HornerStepNarrowAvx2(acc, v, c1);
      acc = HornerStepNarrowAvx2(acc, v, c0);
    } else {
      acc = HornerStepAvx2(c3, v, c2);
      acc = HornerStepAvx2(acc, v, c1);
      acc = HornerStepAvx2(acc, v, c0);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (i < n) PolyEvalBatch4Scalar(coeff, x + i, out + i, n - i);
}

__attribute__((target("avx2"))) void SliceBucketSignAvx2(
    const uint64_t* h, uint64_t* out, size_t n, unsigned shift,
    unsigned lg_width) {
  const __m256i wm = _mm256_set1_epi64x(
      static_cast<long long>((uint64_t{1} << lg_width) - 1));
  const __m256i top = _mm256_set1_epi64x(
      static_cast<long long>(uint64_t{1} << 63));
  const int sign_up = static_cast<int>(63 - (shift + lg_width));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i u =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    const __m256i bucket =
        _mm256_and_si256(_mm256_srli_epi64(u, static_cast<int>(shift)), wm);
    // Negated sign bit in bit 63: lift the window's top bit then invert it
    // under the top-bit mask (andnot).
    const __m256i sbit = _mm256_and_si256(_mm256_slli_epi64(u, sign_up), top);
    const __m256i nsign = _mm256_andnot_si256(sbit, top);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_or_si256(bucket, nsign));
  }
  if (i < n) SliceBucketSignScalar(h + i, out + i, n - i, shift, lg_width);
}

__attribute__((target("avx2"))) size_t DecimateStrideAvx2(
    const uint64_t* in, size_t n, size_t offset, size_t stride, uint64_t* out,
    size_t max_out) {
  if (stride == 1) {
    return DecimateStrideScalar(in, n, offset, stride, out, max_out);
  }
  if (offset >= n) return 0;
  size_t avail = (n - offset + stride - 1) / stride;
  if (avail > max_out) avail = max_out;
  size_t written = 0;
  if (stride == 2) {
    // Pick lanes {0,2} of each 4-lane vector, two vectors per store. Each
    // iteration reads 8 input elements, so it needs all 8 in bounds.
    const uint64_t* src = in + offset;
    for (; written + 4 <= avail && offset + written * 2 + 8 <= n;
         written += 4) {
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + written * 2));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + written * 2 + 4));
      const __m256i p0 = _mm256_permute4x64_epi64(v0, _MM_SHUFFLE(3, 1, 2, 0));
      const __m256i p1 = _mm256_permute4x64_epi64(v1, _MM_SHUFFLE(3, 1, 2, 0));
      const __m256i packed = _mm256_permute2x128_si256(p0, p1, 0x20);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + written), packed);
    }
  } else if (stride <= (size_t{1} << 40)) {
    // Gather four strided elements per iteration.
    const long long s = static_cast<long long>(stride);
    const __m256i idx = _mm256_set_epi64x(3 * s, 2 * s, s, 0);
    for (; written + 4 <= avail; written += 4) {
      const long long* base = reinterpret_cast<const long long*>(
          in + offset + written * stride);
      const __m256i g = _mm256_i64gather_epi64(base, idx, 8);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + written), g);
    }
  }
  for (; written < avail; ++written) {
    out[written] = in[offset + written * stride];
  }
  return written;
}

// GCC's unmasked AVX-512 intrinsics expand through _mm512_undefined_epi32,
// which -Wmaybe-uninitialized flags as a false positive (GCC PR 105593).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace {

// AVX-512 Horner steps: 8 lanes per vector, and mask registers give native
// unsigned compares, so the carry handling is cheaper than in AVX2. Both
// steps compute the exact 128-bit product acc * x and then the same
// Reduce61 as the scalar reference, so all flavours stay bit-identical.

// Wide step: full 64x64 product via the carry-free mulhi decomposition
//   t = hl + (ll >> 32); w = lh + (t & 2^32-1)          (both < 2^64)
//   hi = hh + (t >> 32) + (w >> 32); lo = (w << 32) | (ll & 2^32-1).
__attribute__((target("avx512f"))) inline __m512i HornerStepAvx512(
    __m512i acc, __m512i x, __m512i c) {
  const __m512i m32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i a_hi = _mm512_srli_epi64(acc, 32);
  const __m512i x_hi = _mm512_srli_epi64(x, 32);
  const __m512i ll = _mm512_mul_epu32(acc, x);
  const __m512i lh = _mm512_mul_epu32(acc, x_hi);
  const __m512i hl = _mm512_mul_epu32(a_hi, x);
  const __m512i hh = _mm512_mul_epu32(a_hi, x_hi);
  const __m512i t = _mm512_add_epi64(hl, _mm512_srli_epi64(ll, 32));
  const __m512i w = _mm512_add_epi64(lh, _mm512_and_si512(t, m32));
  __m512i hi = _mm512_add_epi64(
      _mm512_add_epi64(hh, _mm512_srli_epi64(t, 32)), _mm512_srli_epi64(w, 32));
  const __m512i lo0 = _mm512_or_si512(_mm512_slli_epi64(w, 32),
                                      _mm512_and_si512(ll, m32));
  // + c (c < 2^61 fits the low word; carry feeds the high word).
  const __m512i lo = _mm512_add_epi64(lo0, c);
  const __mmask8 carry = _mm512_cmplt_epu64_mask(lo, lo0);
  hi = _mm512_mask_add_epi64(hi, carry, hi, _mm512_set1_epi64(1));
  // Reduce61: r = (v & p) + ((v >> 61) mod 2^64); one conditional subtract.
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(kP61));
  const __m512i low_bits = _mm512_and_si512(lo, p);
  const __m512i high_bits = _mm512_or_si512(_mm512_srli_epi64(lo, 61),
                                            _mm512_slli_epi64(hi, 3));
  __m512i r = _mm512_add_epi64(low_bits, high_bits);
  const __mmask8 ge = _mm512_cmpge_epu64_mask(r, p);
  return _mm512_mask_sub_epi64(r, ge, r, p);
}

// Narrow step (every lane of x < 2^32): product = ll + (hl << 32), where
// t = hl + (ll >> 32) cannot wrap -- same exact 128-bit value as the wide
// step at half the multiplies.
__attribute__((target("avx512f"))) inline __m512i HornerStepNarrowAvx512(
    __m512i acc, __m512i x, __m512i c) {
  const __m512i m32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i ll = _mm512_mul_epu32(acc, x);
  const __m512i hl = _mm512_mul_epu32(_mm512_srli_epi64(acc, 32), x);
  const __m512i t = _mm512_add_epi64(hl, _mm512_srli_epi64(ll, 32));
  __m512i hi = _mm512_srli_epi64(t, 32);
  const __m512i lo0 = _mm512_or_si512(_mm512_slli_epi64(t, 32),
                                      _mm512_and_si512(ll, m32));
  const __m512i lo = _mm512_add_epi64(lo0, c);
  const __mmask8 carry = _mm512_cmplt_epu64_mask(lo, lo0);
  hi = _mm512_mask_add_epi64(hi, carry, hi, _mm512_set1_epi64(1));
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(kP61));
  const __m512i low_bits = _mm512_and_si512(lo, p);
  const __m512i high_bits = _mm512_or_si512(_mm512_srli_epi64(lo, 61),
                                            _mm512_slli_epi64(hi, 3));
  __m512i r = _mm512_add_epi64(low_bits, high_bits);
  const __mmask8 ge = _mm512_cmpge_epu64_mask(r, p);
  return _mm512_mask_sub_epi64(r, ge, r, p);
}

__attribute__((target("avx512f"))) inline bool AllNarrowAvx512(__m512i v) {
  return _mm512_cmpge_epu64_mask(v, _mm512_set1_epi64(1LL << 32)) == 0;
}

}  // namespace

__attribute__((target("avx512f"))) void PolyEvalBatch2Avx512(
    const uint64_t* coeff, const uint64_t* x, uint64_t* out, size_t n) {
  const __m512i c0 = _mm512_set1_epi64(static_cast<long long>(coeff[0]));
  const __m512i c1 = _mm512_set1_epi64(static_cast<long long>(coeff[1]));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(x + i);
    const __m512i r = AllNarrowAvx512(v) ? HornerStepNarrowAvx512(c1, v, c0)
                                         : HornerStepAvx512(c1, v, c0);
    _mm512_storeu_si512(out + i, r);
  }
  if (i < n) PolyEvalBatch2Scalar(coeff, x + i, out + i, n - i);
}

__attribute__((target("avx512f"))) void PolyEvalBatch4Avx512(
    const uint64_t* coeff, const uint64_t* x, uint64_t* out, size_t n) {
  const __m512i c0 = _mm512_set1_epi64(static_cast<long long>(coeff[0]));
  const __m512i c1 = _mm512_set1_epi64(static_cast<long long>(coeff[1]));
  const __m512i c2 = _mm512_set1_epi64(static_cast<long long>(coeff[2]));
  const __m512i c3 = _mm512_set1_epi64(static_cast<long long>(coeff[3]));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(x + i);
    __m512i acc;
    if (AllNarrowAvx512(v)) {
      acc = HornerStepNarrowAvx512(c3, v, c2);
      acc = HornerStepNarrowAvx512(acc, v, c1);
      acc = HornerStepNarrowAvx512(acc, v, c0);
    } else {
      acc = HornerStepAvx512(c3, v, c2);
      acc = HornerStepAvx512(acc, v, c1);
      acc = HornerStepAvx512(acc, v, c0);
    }
    _mm512_storeu_si512(out + i, acc);
  }
  if (i < n) PolyEvalBatch4Scalar(coeff, x + i, out + i, n - i);
}

__attribute__((target("avx512f"))) void SliceBucketSignAvx512(
    const uint64_t* h, uint64_t* out, size_t n, unsigned shift,
    unsigned lg_width) {
  const __m512i wm = _mm512_set1_epi64(
      static_cast<long long>((uint64_t{1} << lg_width) - 1));
  const __m512i top = _mm512_set1_epi64(
      static_cast<long long>(uint64_t{1} << 63));
  const int sign_up = static_cast<int>(63 - (shift + lg_width));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i u = _mm512_loadu_si512(h + i);
    const __m512i bucket =
        _mm512_and_si512(_mm512_srli_epi64(u, static_cast<int>(shift)), wm);
    const __m512i sbit = _mm512_and_si512(_mm512_slli_epi64(u, sign_up), top);
    const __m512i nsign = _mm512_andnot_si512(sbit, top);
    _mm512_storeu_si512(out + i, _mm512_or_si512(bucket, nsign));
  }
  if (i < n) SliceBucketSignScalar(h + i, out + i, n - i, shift, lg_width);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // defined(__x86_64__)

void PolyEvalBatch2(const uint64_t* coeff, const uint64_t* x, uint64_t* out,
                    size_t n) {
#if defined(__x86_64__)
  if (Avx512Active()) {
    PolyEvalBatch2Avx512(coeff, x, out, n);
    return;
  }
  if (Avx2Active()) {
    PolyEvalBatch2Avx2(coeff, x, out, n);
    return;
  }
#endif
  PolyEvalBatch2Scalar(coeff, x, out, n);
}

void PolyEvalBatch4(const uint64_t* coeff, const uint64_t* x, uint64_t* out,
                    size_t n) {
#if defined(__x86_64__)
  if (Avx512Active()) {
    PolyEvalBatch4Avx512(coeff, x, out, n);
    return;
  }
  if (Avx2Active()) {
    PolyEvalBatch4Avx2(coeff, x, out, n);
    return;
  }
#endif
  PolyEvalBatch4Scalar(coeff, x, out, n);
}

void SliceBucketSign(const uint64_t* h, uint64_t* out, size_t n,
                     unsigned shift, unsigned lg_width) {
#if defined(__x86_64__)
  if (Avx512Active()) {
    SliceBucketSignAvx512(h, out, n, shift, lg_width);
    return;
  }
  if (Avx2Active()) {
    SliceBucketSignAvx2(h, out, n, shift, lg_width);
    return;
  }
#endif
  SliceBucketSignScalar(h, out, n, shift, lg_width);
}

size_t DecimateStride(const uint64_t* in, size_t n, size_t offset,
                      size_t stride, uint64_t* out, size_t max_out) {
#if defined(__x86_64__)
  if (Avx2Active()) {
    return DecimateStrideAvx2(in, n, offset, stride, out, max_out);
  }
#endif
  return DecimateStrideScalar(in, n, offset, stride, out, max_out);
}

}  // namespace streamq::simd
