#include "util/crc32c.h"

#include <array>

namespace streamq {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli polynomial

struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFF];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFF];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFF];
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t crc) {
  const Tables& tb = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFF] ^ tb.t[2][(crc >> 8) & 0xFF] ^
          tb.t[1][(crc >> 16) & 0xFF] ^ tb.t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace streamq
