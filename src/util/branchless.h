// Branch-free binary search over a sorted range.
//
// GKArray's flush walks a sorted insert buffer against the sorted summary;
// locating each buffer element's successor with std::upper_bound costs one
// hard-to-predict branch per probe. The variant here narrows the range with
// a conditional move instead (the `base += ...` compiles to cmov), so the
// probe loop has no data-dependent branch at all.

#ifndef STREAMQ_UTIL_BRANCHLESS_H_
#define STREAMQ_UTIL_BRANCHLESS_H_

#include <cstddef>

namespace streamq {

/// Index of the first element in sorted [first, first+count) that is
/// strictly greater than `value` under `less(value, element)` (i.e.
/// std::upper_bound as an index), computed with a branch-free probe loop.
/// Element and probe types may differ (heterogeneous comparator).
template <typename Elem, typename V, typename Less>
size_t BranchlessUpperBound(const Elem* first, size_t count, const V& value,
                            Less less) {
  const Elem* base = first;
  while (count > 1) {
    const size_t half = count / 2;
    // Keep the right half iff its first element is <= value.
    base += less(value, base[half - 1]) ? 0 : half;
    count -= half;
  }
  if (count == 1 && !less(value, *base)) ++base;
  return static_cast<size_t>(base - first);
}

}  // namespace streamq

#endif  // STREAMQ_UTIL_BRANCHLESS_H_
