// Memory-accounting conventions for the experimental harness.
//
// The paper reports space in bytes where "every element from the stream,
// counter, or pointer consumes 4 bytes", with auxiliary structures (search
// trees, heaps, hash tables) "carefully accounted for". Each sketch
// implements MemoryBytes() using these constants so the bench output is
// directly comparable with the paper's KB axes, independent of the in-RAM
// width this implementation actually uses.

#ifndef STREAMQ_UTIL_MEMORY_H_
#define STREAMQ_UTIL_MEMORY_H_

#include <cstddef>

namespace streamq {

/// Accounting width of one stream element.
inline constexpr size_t kBytesPerElement = 4;
/// Accounting width of one counter (g, Delta, frequency, ...).
inline constexpr size_t kBytesPerCounter = 4;
/// Accounting width of one pointer (tree child link, heap slot, ...).
inline constexpr size_t kBytesPerPointer = 4;

/// Accounting cost of one node in a balanced binary search tree holding a
/// stream element: the element plus left/right/parent links.
inline constexpr size_t kBytesPerTreeNode = kBytesPerElement + 3 * kBytesPerPointer;

/// Accounting cost of one hash-table slot holding a (key, counter) pair:
/// key, counter, and one chaining pointer.
inline constexpr size_t kBytesPerHashSlot =
    kBytesPerElement + kBytesPerCounter + kBytesPerPointer;

}  // namespace streamq

#endif  // STREAMQ_UTIL_MEMORY_H_
