// Binary serialisation for sketch snapshots, hardened for transport.
//
// Summaries are shipped between processes (the mergeable-summary use case,
// the distributed monitor) or checkpointed with the stream offset. Two
// layers:
//
//  * SerdeWriter / SerdeReader: compact little-endian primitive encoding.
//    Every read is bounds-checked against the remaining buffer BEFORE any
//    allocation, so a corrupt length field can never trigger a multi-GB
//    resize or bad_alloc — it is rejected as malformed input instead.
//
//  * Framed snapshots: every externally visible snapshot is wrapped in a
//    fixed header  magic | version | type | payload_len | crc32c(payload)
//    (see kFrameHeaderBytes). Deserialize first validates the frame:
//    wrong magic/version, a type tag for a different sketch, a length that
//    does not match the buffer, or a CRC32C mismatch all fail cleanly
//    (nullptr / false) before a single payload byte is interpreted. Any
//    single-byte corruption of a framed snapshot is therefore detected.
//
// The format is versioned per-frame (kFrameVersion); readers reject frames
// from a future version rather than misparse them.

#ifndef STREAMQ_UTIL_SERDE_H_
#define STREAMQ_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace streamq {

class SerdeWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&v, sizeof(v));
  }

  template <typename T>
  void PodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  /// Length-prefixed byte string (e.g. a nested snapshot inside a larger
  /// checkpoint or wire message).
  void Bytes(const std::string& s) {
    U64(s.size());
    if (!s.empty()) Raw(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

class SerdeReader {
 public:
  explicit SerdeReader(const std::string& buffer) : buffer_(buffer) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Raw(v, sizeof(*v));
  }

  /// Reads a length-prefixed POD vector. The decoded element count is
  /// bounded by the bytes actually remaining in the buffer before *v is
  /// resized, so a corrupt length can neither over-allocate nor leave *v
  /// partially written: on any failure *v is untouched.
  template <typename T>
  bool PodVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > Remaining() / sizeof(T)) return false;  // corrupt length
    v->resize(static_cast<size_t>(size));
    return size == 0 || Raw(v->data(), static_cast<size_t>(size) * sizeof(T));
  }

  /// Reads a length-prefixed byte string with the same bounded-allocation
  /// guarantee as PodVector.
  bool Bytes(std::string* s) {
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > Remaining()) return false;  // corrupt length
    s->assign(buffer_.data() + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return true;
  }

  /// Bytes not yet consumed.
  size_t Remaining() const { return buffer_.size() - pos_; }

  /// True when every byte has been consumed (a full, exact parse).
  bool Done() const { return pos_ == buffer_.size(); }

 private:
  bool Raw(void* out, size_t size) {
    if (Remaining() < size) return false;
    std::memcpy(out, buffer_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  const std::string& buffer_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Framed snapshots
// ---------------------------------------------------------------------------

/// Type tag carried in every frame header: a frame for one sketch type is
/// never accepted by another's Deserialize.
enum class SnapshotType : uint16_t {
  kGkTheory = 1,
  kGkAdaptive = 2,
  kGkArray = 3,
  kRandom = 4,
  kMrl99 = 5,
  kFastQDigest = 6,
  kDcm = 7,
  kDcs = 8,
  kRss = 9,
  // Distributed-monitor wire messages and checkpoints.
  kMonitorShipment = 32,
  kMonitorAck = 33,
  kSiteCheckpoint = 34,
  // Cluster data path (src/cluster/): epoch-numbered summary shipments
  // node -> coordinator, validated acks coordinator -> node, and the tiny
  // per-node epoch<->seq meta record persisted beside the WAL.
  kClusterShipment = 35,
  kClusterAck = 36,
  kClusterNodeMeta = 37,
  // Observability (src/obs/): a full MetricsRegistry snapshot.
  kMetricsRegistry = 48,
  // Network service tier (src/net/): request/response frames on the
  // client <-> server byte stream. The frame header doubles as the wire
  // length prefix (payload_len at a fixed offset), so a connection can be
  // stream-parsed frame by frame with the same single-flipped-byte
  // detection guarantee as every other snapshot.
  kNetRequest = 80,
  kNetResponse = 81,
  // Durable ingest (src/durability/): an atomic pipeline checkpoint
  // (per-shard sketch frames + applied sequence numbers).
  kDurableCheckpoint = 64,
};

inline constexpr uint32_t kFrameMagic = 0x53514652u;  // "SQFR"
inline constexpr uint16_t kFrameVersion = 1;
/// magic u32 | version u16 | type u16 | payload_len u64 | crc32c u32
inline constexpr size_t kFrameHeaderBytes = 4 + 2 + 2 + 8 + 4;

/// Wraps `payload` in a checksummed frame header.
std::string FrameSnapshot(SnapshotType type, const std::string& payload);

/// Validates a frame (magic, version, type tag, exact length, CRC32C) and on
/// success copies the payload into *payload. Returns false — leaving
/// *payload untouched — on any mismatch; never allocates more than the
/// frame's actual size.
bool UnframeSnapshot(const std::string& frame, SnapshotType expected,
                     std::string* payload);

/// Reads the type tag of a structurally valid frame without checking the
/// payload CRC; false if the header is malformed.
bool PeekSnapshotType(const std::string& frame, SnapshotType* type);

}  // namespace streamq

#endif  // STREAMQ_UTIL_SERDE_H_
