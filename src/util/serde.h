// Minimal binary serialisation helpers for sketch snapshots.
//
// Summaries are often shipped between processes (the mergeable-summary use
// case) or checkpointed with the stream offset; Writer/Reader provide a
// compact little-endian encoding with explicit framing. The format is not
// versioned across library releases -- it is a snapshot format, not an
// archival one -- but every Deserialize validates structure and fails
// cleanly (returns false / nullptr) on corrupt input.

#ifndef STREAMQ_UTIL_SERDE_H_
#define STREAMQ_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace streamq {

class SerdeWriter {
 public:
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&v, sizeof(v));
  }

  template <typename T>
  void PodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    if (!v.empty()) Raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void Raw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  std::string buffer_;
};

class SerdeReader {
 public:
  explicit SerdeReader(const std::string& buffer) : buffer_(buffer) {}

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Raw(v, sizeof(*v));
  }

  template <typename T>
  bool PodVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t size = 0;
    if (!U64(&size)) return false;
    if (size > (buffer_.size() - pos_) / sizeof(T)) return false;  // corrupt
    v->resize(size);
    return size == 0 || Raw(v->data(), size * sizeof(T));
  }

  /// True when every byte has been consumed (a full, exact parse).
  bool Done() const { return pos_ == buffer_.size(); }

 private:
  bool Raw(void* out, size_t size) {
    if (buffer_.size() - pos_ < size) return false;
    std::memcpy(out, buffer_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  const std::string& buffer_;
  size_t pos_ = 0;
};

}  // namespace streamq

#endif  // STREAMQ_UTIL_SERDE_H_
