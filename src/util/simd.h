// Runtime-dispatched SIMD kernels for the sketch hot paths.
//
// Policy (DESIGN.md section 14): every kernel exists in a scalar flavour
// and -- on x86-64 -- AVX2 and (for the polynomial kernels) AVX-512
// flavours, selected at runtime from cpuid, best tier first. The vector
// code is compiled with per-function target attributes, so the library
// binary runs unchanged on hosts without those ISAs, and the kernels must
// be *bit-identical* to their scalar references on every input: callers
// rely on a sketch built on an AVX-512 host serializing byte-for-byte the
// same as one built on a scalar host. The equivalence tests
// (tests/simd_test.cc, tests/batch_update_test.cc) compare all flavours
// directly, and the force-scalar override lets the fallback path be
// exercised on vector hosts too.

#ifndef STREAMQ_UTIL_SIMD_H_
#define STREAMQ_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace streamq::simd {

/// True when the host CPU executes AVX2 (cached cpuid probe; always false
/// off x86-64).
bool CpuHasAvx2();

/// Test/diagnostics hook: force every dispatching kernel onto its scalar
/// path regardless of cpuid. Also settable via the STREAMQ_FORCE_SCALAR
/// environment variable (any non-empty value, read once at first dispatch).
void SetForceScalar(bool force);

/// Whether the AVX2 flavours are currently selected by the dispatchers:
/// CpuHasAvx2() and not forced scalar.
bool Avx2Active();

/// True when the host CPU executes AVX-512F (cached cpuid probe; always
/// false off x86-64).
bool CpuHasAvx512();

/// Whether the AVX-512 flavours are currently selected by the dispatchers:
/// CpuHasAvx512() and not forced scalar. When true it wins over AVX2.
bool Avx512Active();

// --- Carter-Wegman polynomial evaluation over p = 2^61 - 1 --------------
//
// Batch counterparts of PolyHash<2> / PolyHash<4> (util/hash.h): evaluate
// the degree-(K-1) polynomial with Horner steps
//     acc = ReduceMersenne61(acc * x + c_i)
// for each lane. Bit-identical to calling PolyHash::operator() per element
// (same truncation and same single conditional subtract in the reduction).

/// out[i] = ((c1 * x[i] + c0) mod p), coeff = {c0, c1}. Dispatches.
void PolyEvalBatch2(const uint64_t* coeff, const uint64_t* x, uint64_t* out,
                    size_t n);
/// Degree-3 polynomial, coeff = {c0, c1, c2, c3}. Dispatches.
void PolyEvalBatch4(const uint64_t* coeff, const uint64_t* x, uint64_t* out,
                    size_t n);

/// Scalar references (exposed so the equivalence tests can pin the
/// dispatched and AVX2 flavours against them on any host).
void PolyEvalBatch2Scalar(const uint64_t* coeff, const uint64_t* x,
                          uint64_t* out, size_t n);
void PolyEvalBatch4Scalar(const uint64_t* coeff, const uint64_t* x,
                          uint64_t* out, size_t n);

#if defined(__x86_64__)
/// AVX2 flavours; calling them requires CpuHasAvx2().
void PolyEvalBatch2Avx2(const uint64_t* coeff, const uint64_t* x,
                        uint64_t* out, size_t n);
void PolyEvalBatch4Avx2(const uint64_t* coeff, const uint64_t* x,
                        uint64_t* out, size_t n);

/// AVX-512 flavours (8 lanes; narrow-operand fast path when every lane of a
/// vector is < 2^32, which computes the identical 128-bit product from two
/// 32x32 partials instead of four). Calling them requires CpuHasAvx512().
void PolyEvalBatch2Avx512(const uint64_t* coeff, const uint64_t* x,
                          uint64_t* out, size_t n);
void PolyEvalBatch4Avx512(const uint64_t* coeff, const uint64_t* x,
                          uint64_t* out, size_t n);
#endif

// --- (bucket, sign) slicing for Count-Sketch rows -----------------------
//
// CountSketch derives each row's (bucket, sign) pair from a bit-slice of a
// shared 4-wise polynomial value (see the class comment): row slice k of a
// hash h is the (lg_width + 1)-bit window starting at bit shift =
// k*(lg_width+1). SliceBucketSign packs, for each input value, the low
// lg_width bits of the window (the bucket) into the low bits of out[i] and
// the *negated* top window bit into bit 63, so the scatter loop recovers
// the signed delta as (delta ^ s) - s with s = int64(out[i]) >> 63.
// Requires shift + lg_width + 1 <= 64. Pure bit moves, so all flavours are
// trivially bit-identical.

/// Dispatching slicer: out[i] = ((h[i]>>shift) & (2^lg_width - 1))
///                              | (~(h[i] >> (shift+lg_width)) & 1) << 63.
void SliceBucketSign(const uint64_t* h, uint64_t* out, size_t n,
                     unsigned shift, unsigned lg_width);

/// Scalar reference.
void SliceBucketSignScalar(const uint64_t* h, uint64_t* out, size_t n,
                           unsigned shift, unsigned lg_width);

#if defined(__x86_64__)
/// AVX2 / AVX-512 flavours; calling them requires the matching cpuid bit.
void SliceBucketSignAvx2(const uint64_t* h, uint64_t* out, size_t n,
                         unsigned shift, unsigned lg_width);
void SliceBucketSignAvx512(const uint64_t* h, uint64_t* out, size_t n,
                           unsigned shift, unsigned lg_width);
#endif

// --- strided selection (buffer compaction) ------------------------------
//
// The sample-based summaries compact by keeping a regular subsequence of a
// sorted buffer: Random keeps the odd or even positions of a merged pair
// (stride 2) and promotes buffers across levels by a stride-2^gap
// subsequence; MRL99's equal-weight COLLAPSE keeps every m-th element.
// Decimate copies in[offset], in[offset+stride], ... into out and returns
// the number of elements written (at most max_out). Plain copies, so all
// flavours are trivially bit-identical.

/// Dispatching strided copy; stride >= 1, offset < n for a non-empty
/// result. max_out caps the output count (SIZE_MAX for "all").
size_t DecimateStride(const uint64_t* in, size_t n, size_t offset,
                      size_t stride, uint64_t* out, size_t max_out);

/// Scalar reference.
size_t DecimateStrideScalar(const uint64_t* in, size_t n, size_t offset,
                            size_t stride, uint64_t* out, size_t max_out);

#if defined(__x86_64__)
/// AVX2 flavour (stride 2 via lane permutes, larger strides via gathers).
size_t DecimateStrideAvx2(const uint64_t* in, size_t n, size_t offset,
                          size_t stride, uint64_t* out, size_t max_out);
#endif

}  // namespace streamq::simd

#endif  // STREAMQ_UTIL_SIMD_H_
