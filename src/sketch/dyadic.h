// Dyadic decomposition of a fixed universe [0, 2^log_u).
//
// Level i partitions the universe into cells of width 2^i; cell j at level i
// covers [j*2^i, (j+1)*2^i). Level 0 is the items themselves, level log_u is
// the single root cell. Every turnstile quantile algorithm in the paper
// maintains one frequency estimator per level and answers rank queries by
// decomposing a prefix [0, x) into at most log_u disjoint cells, one per
// level.

#ifndef STREAMQ_SKETCH_DYADIC_H_
#define STREAMQ_SKETCH_DYADIC_H_

#include <cstdint>
#include <vector>

namespace streamq {

struct DyadicCell {
  int level;       // cell width is 2^level
  uint64_t index;  // cell covers [index << level, (index + 1) << level)
};

/// Decomposes the prefix [0, x) into disjoint dyadic cells, one per level at
/// most: wherever bit i of x is set, the cell just left of the path at level
/// i is fully contained in the prefix.
std::vector<DyadicCell> PrefixDecomposition(uint64_t x, int log_u);

/// Lowest value covered by a cell.
inline uint64_t CellLow(const DyadicCell& c) { return c.index << c.level; }

/// Number of values covered by a cell.
inline uint64_t CellWidth(const DyadicCell& c) { return uint64_t{1} << c.level; }

}  // namespace streamq

#endif  // STREAMQ_SKETCH_DYADIC_H_
