// Abstract frequency estimator over a (reduced) integer universe, used by
// the dyadic turnstile quantile algorithms: one estimator per dyadic level.

#ifndef STREAMQ_SKETCH_FREQUENCY_ESTIMATOR_H_
#define STREAMQ_SKETCH_FREQUENCY_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>

namespace streamq {

/// Processes a turnstile stream of (item, +-delta) updates and estimates the
/// frequency of any item.
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Applies one update (delta may be negative in the turnstile model).
  virtual void Update(uint64_t item, int64_t delta) = 0;

  /// Applies the same delta to each of items[0..n). All estimators here are
  /// linear sketches, so the result equals the item-wise Update loop
  /// bit-for-bit regardless of application order; overrides exploit that to
  /// batch the hashing (SIMD polynomial evaluation) and walk the counter
  /// array row-by-row. The default simply loops.
  virtual void UpdateBatch(const uint64_t* items, size_t n, int64_t delta) {
    for (size_t i = 0; i < n; ++i) Update(items[i], delta);
  }

  /// Estimated frequency of `item`.
  virtual double Estimate(uint64_t item) const = 0;

  /// True when estimates are exact (small reduced universes keep plain
  /// counter arrays instead of a sketch).
  virtual bool IsExact() const { return false; }

  /// Estimated variance of Estimate() for a typical item; 0 when exact or
  /// unavailable. Used by the OLS post-processing step.
  virtual double VarianceEstimate() const { return 0.0; }

  /// Whether MergeFrom(other) is valid: same concrete estimator type and
  /// identical counter dimensions. Hash functions are not comparable
  /// through this interface, so callers must additionally guarantee both
  /// estimators were built from the same construction seed (the dyadic
  /// quantile layer compares its recorded seed before descending here).
  virtual bool CompatibleForMerge(const FrequencyEstimator& other) const = 0;

  /// Adds `other`'s counters into this estimator. All estimators in the
  /// library are linear sketches, so counter addition makes this estimator
  /// summarise the sum of both input streams exactly (no extra error beyond
  /// the width/depth guarantee at the combined stream length).
  /// Precondition: CompatibleForMerge(other).
  virtual void MergeFrom(const FrequencyEstimator& other) = 0;

  /// Memory footprint under the paper's accounting conventions.
  virtual size_t MemoryBytes() const = 0;

  /// Appends the counter state to `w` (hash functions are reconstructed
  /// from the construction seed, so only counters need to travel).
  virtual void SaveCounters(class SerdeWriter& w) const = 0;

  /// Restores counter state saved by SaveCounters from an estimator built
  /// with identical dimensions/seed; false on corrupt or mismatched input.
  virtual bool LoadCounters(class SerdeReader& r) = 0;
};

}  // namespace streamq

#endif  // STREAMQ_SKETCH_FREQUENCY_ESTIMATOR_H_
