#include "sketch/count_min.h"

#include <algorithm>

#include "util/memory.h"
#include "util/random.h"

namespace streamq {

CountMin::CountMin(uint64_t width, int depth, uint64_t seed)
    : width_(std::max<uint64_t>(1, width)),
      width_mod_(width_),
      depth_(std::max(1, depth)) {
  uint64_t sm = seed;
  hashes_.reserve(depth_);
  for (int i = 0; i < depth_; ++i) {
    hashes_.emplace_back(SplitMix64(&sm), width_);
  }
  counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

void CountMin::Update(uint64_t item, int64_t delta) {
  // width_mod_.Mod(poly) == hashes_[i](item) exactly, without the divide.
  for (int i = 0; i < depth_; ++i) {
    counters_[static_cast<size_t>(i) * width_ +
              width_mod_.Mod(hashes_[i].poly()(item))] += delta;
  }
}

void CountMin::UpdateBatch(const uint64_t* items, size_t n, int64_t delta) {
  // Row-by-row over a bounded chunk: the polynomial evaluations vectorize
  // (PolyHash::EvalBatch) and each row's counter adds stay within one
  // row-sized working set. Counter addition commutes, so the reordering
  // relative to the item-wise loop leaves identical counters.
  constexpr size_t kChunk = 512;
  uint64_t h[kChunk];
  for (size_t off = 0; off < n; off += kChunk) {
    const size_t m = std::min(kChunk, n - off);
    for (int i = 0; i < depth_; ++i) {
      hashes_[i].poly().EvalBatch(items + off, h, m);
      int64_t* row = &counters_[static_cast<size_t>(i) * width_];
      for (size_t j = 0; j < m; ++j) row[width_mod_.Mod(h[j])] += delta;
    }
  }
}

double CountMin::Estimate(uint64_t item) const {
  int64_t best = INT64_MAX;
  for (int i = 0; i < depth_; ++i) {
    best = std::min(
        best, counters_[static_cast<size_t>(i) * width_ +
                        width_mod_.Mod(hashes_[i].poly()(item))]);
  }
  return static_cast<double>(best);
}

bool CountMin::CompatibleForMerge(const FrequencyEstimator& other) const {
  const auto* peer = dynamic_cast<const CountMin*>(&other);
  return peer != nullptr && peer->width_ == width_ && peer->depth_ == depth_;
}

void CountMin::MergeFrom(const FrequencyEstimator& other) {
  const auto& peer = static_cast<const CountMin&>(other);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += peer.counters_[i];
  }
}

void CountMin::SaveCounters(SerdeWriter& w) const { w.PodVector(counters_); }

bool CountMin::LoadCounters(SerdeReader& r) {
  const size_t expected = counters_.size();
  return r.PodVector(&counters_) && counters_.size() == expected;
}

size_t CountMin::MemoryBytes() const {
  // Counter array plus the hash coefficients (2 words per pairwise hash).
  return counters_.size() * kBytesPerCounter +
         static_cast<size_t>(depth_) * 2 * kBytesPerCounter;
}

}  // namespace streamq
