#include "sketch/rss_sketch.h"

#include <algorithm>

#include "util/memory.h"
#include "util/random.h"

namespace streamq {

RssSketch::RssSketch(uint64_t width, int depth, uint64_t seed)
    : width_(std::max<uint64_t>(1, width)), depth_(std::max(1, depth)) {
  uint64_t sm = seed;
  subsets_.reserve(static_cast<size_t>(depth_) * width_);
  for (size_t i = 0; i < static_cast<size_t>(depth_) * width_; ++i) {
    subsets_.emplace_back(SplitMix64(&sm));
  }
  counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

void RssSketch::Update(uint64_t item, int64_t delta) {
  total_ += delta;
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (subsets_[i](item)) counters_[i] += delta;
  }
}

double RssSketch::Estimate(uint64_t item) const {
  double medians[64];
  const int d = std::min<int>(depth_, 64);
  for (int r = 0; r < d; ++r) {
    double sum = 0.0;
    for (uint64_t j = 0; j < width_; ++j) {
      const size_t idx = static_cast<size_t>(r) * width_ + j;
      const double c = static_cast<double>(counters_[idx]);
      const double f = static_cast<double>(total_);
      sum += subsets_[idx](item) ? (2.0 * c - f) : (f - 2.0 * c);
    }
    medians[r] = sum / static_cast<double>(width_);
  }
  std::nth_element(medians, medians + d / 2, medians + d);
  return medians[d / 2];
}

bool RssSketch::CompatibleForMerge(const FrequencyEstimator& other) const {
  const auto* peer = dynamic_cast<const RssSketch*>(&other);
  return peer != nullptr && peer->width_ == width_ && peer->depth_ == depth_;
}

void RssSketch::MergeFrom(const FrequencyEstimator& other) {
  const auto& peer = static_cast<const RssSketch&>(other);
  total_ += peer.total_;
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += peer.counters_[i];
  }
}

void RssSketch::SaveCounters(SerdeWriter& w) const {
  w.I64(total_);
  w.PodVector(counters_);
}

bool RssSketch::LoadCounters(SerdeReader& r) {
  const size_t expected = counters_.size();
  return r.I64(&total_) && r.PodVector(&counters_) &&
         counters_.size() == expected;
}

size_t RssSketch::MemoryBytes() const {
  // Counters plus the exact total plus 2 hash words per subset.
  return counters_.size() * kBytesPerCounter + kBytesPerCounter +
         subsets_.size() * 2 * kBytesPerCounter;
}

}  // namespace streamq
