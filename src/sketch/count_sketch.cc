#include "sketch/count_sketch.h"

#include <algorithm>

#include "util/memory.h"
#include "util/random.h"

namespace streamq {

CountSketch::CountSketch(uint64_t width, int depth, uint64_t seed)
    : width_(std::max<uint64_t>(1, width)), depth_(std::max(1, depth)) {
  uint64_t sm = seed;
  hashes_.reserve(depth_);
  for (int i = 0; i < depth_; ++i) {
    hashes_.emplace_back(SplitMix64(&sm));
  }
  counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

void CountSketch::Update(uint64_t item, int64_t delta) {
  for (int i = 0; i < depth_; ++i) {
    const auto [bucket, sign] = Locate(i, item);
    counters_[static_cast<size_t>(i) * width_ + bucket] += sign * delta;
  }
}

double CountSketch::RowEstimate(int row, uint64_t item) const {
  const auto [bucket, sign] = Locate(row, item);
  return static_cast<double>(
      sign * counters_[static_cast<size_t>(row) * width_ + bucket]);
}

double CountSketch::Estimate(uint64_t item) const {
  int64_t est[64];
  const int d = std::min(depth_, 64);
  for (int i = 0; i < d; ++i) {
    const auto [bucket, sign] = Locate(i, item);
    est[i] = sign * counters_[static_cast<size_t>(i) * width_ + bucket];
  }
  std::nth_element(est, est + d / 2, est + d);
  if (d % 2 == 1) return static_cast<double>(est[d / 2]);
  // Even depth: average the two central order statistics to stay unbiased.
  const int64_t upper = est[d / 2];
  const int64_t lower = *std::max_element(est, est + d / 2);
  return 0.5 * static_cast<double>(lower + upper);
}

double CountSketch::VarianceEstimate() const {
  // AMS: E[sum_j C[0][j]^2] = F2, and Var(row estimate) = (F2 - f_x^2)/w
  // <= F2/w. One row suffices; the paper notes the unknown median-of-d
  // factor cancels because the BLUE is invariant to scaling all variances.
  double f2 = 0.0;
  for (uint64_t j = 0; j < width_; ++j) {
    const double c = static_cast<double>(counters_[j]);
    f2 += c * c;
  }
  return f2 / static_cast<double>(width_);
}

bool CountSketch::CompatibleForMerge(const FrequencyEstimator& other) const {
  const auto* peer = dynamic_cast<const CountSketch*>(&other);
  return peer != nullptr && peer->width_ == width_ && peer->depth_ == depth_;
}

void CountSketch::MergeFrom(const FrequencyEstimator& other) {
  const auto& peer = static_cast<const CountSketch&>(other);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += peer.counters_[i];
  }
}

void CountSketch::SaveCounters(SerdeWriter& w) const {
  w.PodVector(counters_);
}

bool CountSketch::LoadCounters(SerdeReader& r) {
  const size_t expected = counters_.size();
  return r.PodVector(&counters_) && counters_.size() == expected;
}

size_t CountSketch::MemoryBytes() const {
  // Counters plus 4 polynomial coefficients per row.
  return counters_.size() * kBytesPerCounter +
         static_cast<size_t>(depth_) * 4 * kBytesPerCounter;
}

}  // namespace streamq
