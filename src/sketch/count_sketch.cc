#include "sketch/count_sketch.h"

#include <algorithm>
#include <bit>

#include "util/memory.h"
#include "util/random.h"
#include "util/simd.h"

namespace streamq {

CountSketch::CountSketch(uint64_t width, int depth, uint64_t seed)
    : width_(std::bit_ceil(std::max<uint64_t>(1, width))),
      lg_width_(static_cast<unsigned>(std::countr_zero(width_))),
      depth_(std::max(1, depth)),
      pairs_per_eval_(std::max(1u, 61 / (lg_width_ + 1))) {
  const int evals = (depth_ + pairs_per_eval_ - 1) / pairs_per_eval_;
  uint64_t sm = seed;
  hashes_.reserve(evals);
  for (int i = 0; i < evals; ++i) {
    hashes_.emplace_back(SplitMix64(&sm));
  }
  counters_.assign(static_cast<size_t>(depth_) * width_, 0);
}

void CountSketch::Update(uint64_t item, int64_t delta) {
  // One polynomial evaluation feeds pairs_per_eval_ consecutive rows; the
  // slicing must agree with Locate() exactly.
  for (int e = 0, row = 0; row < depth_; ++e) {
    const uint64_t h = hashes_[e](item);
    for (int k = 0; k < pairs_per_eval_ && row < depth_; ++k, ++row) {
      const uint64_t u = h >> (static_cast<unsigned>(k) * (lg_width_ + 1));
      const int64_t signed_delta = (u >> lg_width_) & 1 ? delta : -delta;
      counters_[static_cast<size_t>(row) * width_ + (u & (width_ - 1))] +=
          signed_delta;
    }
  }
}

void CountSketch::UpdateBatch(const uint64_t* items, size_t n, int64_t delta) {
  // Chunked walk: per polynomial, one vectorized evaluation pass, then per
  // row a vectorized (bucket, sign) slice pass and a scalar scatter. The
  // slices match Locate() exactly and counter addition commutes, so the
  // result is bit-identical to the item-wise loop.
  constexpr size_t kChunk = 512;
  uint64_t h[kChunk];
  uint64_t bs[kChunk];
  for (size_t off = 0; off < n; off += kChunk) {
    const size_t m = std::min(kChunk, n - off);
    for (int e = 0, row = 0; row < depth_; ++e) {
      hashes_[e].EvalBatch(items + off, h, m);
      for (int k = 0; k < pairs_per_eval_ && row < depth_; ++k, ++row) {
        simd::SliceBucketSign(
            h, bs, m, static_cast<unsigned>(k) * (lg_width_ + 1), lg_width_);
        int64_t* row_counters = &counters_[static_cast<size_t>(row) * width_];
        for (size_t j = 0; j < m; ++j) {
          const uint64_t u = bs[j];
          // Bit 63 of the packed slice is the negated sign, so the sar
          // mask turns delta into -delta exactly where the sign is -1.
          const int64_t s = static_cast<int64_t>(u) >> 63;
          row_counters[u & ((uint64_t{1} << 63) - 1)] += (delta ^ s) - s;
        }
      }
    }
  }
}

double CountSketch::RowEstimate(int row, uint64_t item) const {
  const auto [bucket, sign] = Locate(row, item);
  return static_cast<double>(
      sign * counters_[static_cast<size_t>(row) * width_ + bucket]);
}

double CountSketch::Estimate(uint64_t item) const {
  int64_t est[64];
  const int d = std::min(depth_, 64);
  for (int i = 0; i < d; ++i) {
    const auto [bucket, sign] = Locate(i, item);
    est[i] = sign * counters_[static_cast<size_t>(i) * width_ + bucket];
  }
  std::nth_element(est, est + d / 2, est + d);
  if (d % 2 == 1) return static_cast<double>(est[d / 2]);
  // Even depth: average the two central order statistics to stay unbiased.
  const int64_t upper = est[d / 2];
  const int64_t lower = *std::max_element(est, est + d / 2);
  return 0.5 * static_cast<double>(lower + upper);
}

double CountSketch::VarianceEstimate() const {
  // AMS: E[sum_j C[0][j]^2] = F2, and Var(row estimate) = (F2 - f_x^2)/w
  // <= F2/w. One row suffices; the paper notes the unknown median-of-d
  // factor cancels because the BLUE is invariant to scaling all variances.
  double f2 = 0.0;
  for (uint64_t j = 0; j < width_; ++j) {
    const double c = static_cast<double>(counters_[j]);
    f2 += c * c;
  }
  return f2 / static_cast<double>(width_);
}

bool CountSketch::CompatibleForMerge(const FrequencyEstimator& other) const {
  const auto* peer = dynamic_cast<const CountSketch*>(&other);
  return peer != nullptr && peer->width_ == width_ && peer->depth_ == depth_;
}

void CountSketch::MergeFrom(const FrequencyEstimator& other) {
  const auto& peer = static_cast<const CountSketch&>(other);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += peer.counters_[i];
  }
}

void CountSketch::SaveCounters(SerdeWriter& w) const {
  w.PodVector(counters_);
}

bool CountSketch::LoadCounters(SerdeReader& r) {
  const size_t expected = counters_.size();
  return r.PodVector(&counters_) && counters_.size() == expected;
}

size_t CountSketch::MemoryBytes() const {
  // Counters plus 4 polynomial coefficients per shared evaluation.
  return counters_.size() * kBytesPerCounter +
         hashes_.size() * 4 * kBytesPerCounter;
}

}  // namespace streamq
