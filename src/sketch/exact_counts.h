// Exact frequency table for small (reduced) universes.

#ifndef STREAMQ_SKETCH_EXACT_COUNTS_H_
#define STREAMQ_SKETCH_EXACT_COUNTS_H_

#include <cassert>
#include <vector>

#include "sketch/frequency_estimator.h"
#include "util/memory.h"
#include "util/serde.h"

namespace streamq {

/// One counter per universe item; used whenever u_reduced is no larger than
/// the sketch that would otherwise summarise the level (the paper: "if the
/// reduced universe size is smaller than the sketch size, we maintain the
/// frequencies exactly").
class ExactCounts : public FrequencyEstimator {
 public:
  explicit ExactCounts(uint64_t universe) : counts_(universe, 0) {}

  void Update(uint64_t item, int64_t delta) override {
    assert(item < counts_.size());
    counts_[item] += delta;
  }

  void UpdateBatch(const uint64_t* items, size_t n, int64_t delta) override {
    for (size_t i = 0; i < n; ++i) {
      assert(items[i] < counts_.size());
      counts_[items[i]] += delta;
    }
  }

  double Estimate(uint64_t item) const override {
    assert(item < counts_.size());
    return static_cast<double>(counts_[item]);
  }

  bool IsExact() const override { return true; }

  bool CompatibleForMerge(const FrequencyEstimator& other) const override {
    const auto* peer = dynamic_cast<const ExactCounts*>(&other);
    return peer != nullptr && peer->counts_.size() == counts_.size();
  }

  void MergeFrom(const FrequencyEstimator& other) override {
    const auto& peer = static_cast<const ExactCounts&>(other);
    assert(peer.counts_.size() == counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += peer.counts_[i];
  }

  size_t MemoryBytes() const override {
    return counts_.size() * kBytesPerCounter;
  }

  void SaveCounters(SerdeWriter& w) const override { w.PodVector(counts_); }

  bool LoadCounters(SerdeReader& r) override {
    const size_t expected = counts_.size();
    return r.PodVector(&counts_) && counts_.size() == expected;
  }

 private:
  std::vector<int64_t> counts_;
};

}  // namespace streamq

#endif  // STREAMQ_SKETCH_EXACT_COUNTS_H_
