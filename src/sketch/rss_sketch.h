// Random-subset-sum sketch (Gilbert, Kotidis, Muthukrishnan, Strauss,
// VLDB 2002), the first turnstile quantile building block. Kept as the
// baseline the paper excludes for being "much worse" than DCM/DCS.

#ifndef STREAMQ_SKETCH_RSS_SKETCH_H_
#define STREAMQ_SKETCH_RSS_SKETCH_H_

#include <cstdint>
#include <vector>

#include "sketch/frequency_estimator.h"
#include "util/hash.h"
#include "util/serde.h"

namespace streamq {

/// d independent groups of w random subsets. Subset (r, j) contains each
/// universe item independently-enough (pairwise) with probability 1/2; its
/// counter c_{r,j} accumulates the frequency mass of its members. Given the
/// exact total F (tracked internally as the sum of deltas),
///   2*c_{r,j} - F  (when x in subset)   or   F - 2*c_{r,j}  (when not)
/// is an unbiased estimator of f(x) with variance ~ F2; the estimate
/// averages w such estimators per group and takes the median of the d group
/// means. Every update touches all w*d counters, which is why the paper
/// reports both the size and the update time of this sketch as
/// O((1/eps^2) log^2 u log(log(u)/eps)).
class RssSketch : public FrequencyEstimator {
 public:
  RssSketch(uint64_t width, int depth, uint64_t seed);

  void Update(uint64_t item, int64_t delta) override;
  double Estimate(uint64_t item) const override;
  bool CompatibleForMerge(const FrequencyEstimator& other) const override;
  void MergeFrom(const FrequencyEstimator& other) override;
  size_t MemoryBytes() const override;
  void SaveCounters(SerdeWriter& w) const override;
  bool LoadCounters(SerdeReader& r) override;

 private:
  uint64_t width_;
  int depth_;
  int64_t total_ = 0;
  std::vector<SubsetHash> subsets_;  // d x w membership hashes
  std::vector<int64_t> counters_;    // d x w subset sums
};

}  // namespace streamq

#endif  // STREAMQ_SKETCH_RSS_SKETCH_H_
