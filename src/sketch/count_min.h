// Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005).

#ifndef STREAMQ_SKETCH_COUNT_MIN_H_
#define STREAMQ_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "sketch/frequency_estimator.h"
#include "util/fastdiv.h"
#include "util/hash.h"
#include "util/serde.h"

namespace streamq {

/// w x d array of counters; row i adds delta to C[i][h_i(x)]. The estimate
/// is min_i C[i][h_i(x)], a biased (one-sided) overestimate in the strict
/// turnstile model: error <= eps*n with probability 1-delta for
/// w = e/eps, d = ln(1/delta).
class CountMin : public FrequencyEstimator {
 public:
  CountMin(uint64_t width, int depth, uint64_t seed);

  void Update(uint64_t item, int64_t delta) override;
  void UpdateBatch(const uint64_t* items, size_t n, int64_t delta) override;
  double Estimate(uint64_t item) const override;
  bool CompatibleForMerge(const FrequencyEstimator& other) const override;
  void MergeFrom(const FrequencyEstimator& other) override;
  size_t MemoryBytes() const override;
  void SaveCounters(SerdeWriter& w) const override;
  bool LoadCounters(SerdeReader& r) override;

  uint64_t width() const { return width_; }
  int depth() const { return depth_; }

 private:
  uint64_t width_;
  FastMod64 width_mod_;  // exact `% width_` without the hardware divide
  int depth_;
  std::vector<BucketHash> hashes_;      // one pairwise hash per row
  std::vector<int64_t> counters_;       // row-major d x w
};

}  // namespace streamq

#endif  // STREAMQ_SKETCH_COUNT_MIN_H_
