// Count-Sketch (Charikar, Chen, Farach-Colton, ICALP 2002).

#ifndef STREAMQ_SKETCH_COUNT_SKETCH_H_
#define STREAMQ_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "sketch/frequency_estimator.h"
#include "util/hash.h"
#include "util/serde.h"

namespace streamq {

/// w x d counters; row i adds g_i(x)*delta to C[i][h_i(x)] where h_i is
/// pairwise independent and g_i is a 4-wise independent sign. The estimate
/// is the median over rows of g_i(x)*C[i][h_i(x)].
///
/// Implementation note (DESIGN.md section 14): the requested width is
/// rounded UP to the next power of two, and each row's (bucket, sign) pair
/// is an (lg w + 1)-bit slice of a degree-3 polynomial evaluated over
/// GF(2^61-1): the low lg w bits of the slice index the bucket, the top
/// bit picks the sign. A single 4-wise independent value is uniform over
/// [0, 2^61), so each bit-slice is a 4-wise independent (bucket, sign)
/// pair and DISTINCT slices of one value are jointly uniform -- the
/// independence the analysis needs. One evaluation therefore feeds
/// floor(61 / (lg w + 1)) rows, so depth d costs ceil(d / that) polynomial
/// evaluations per update instead of d (e.g. 2 instead of 7 for w = 1024).
/// Rounding the width up can only shrink the per-row variance bound F2/w;
/// the cost is at most 2x the counter memory, which MemoryBytes reports
/// honestly.
///
/// Unlike Count-Min, each row estimator is unbiased with a symmetric
/// distribution, so the median estimate is unbiased too -- the property the
/// paper's DCS analysis exploits (positive and negative errors cancel when
/// log u of these are summed). The per-row variance is F2/w, and the sketch
/// reports sum-of-squared-counters-of-row-0 / w as its variance estimate
/// (the AMS F2 estimator), which the OLS post-processing consumes.
class CountSketch : public FrequencyEstimator {
 public:
  CountSketch(uint64_t width, int depth, uint64_t seed);

  void Update(uint64_t item, int64_t delta) override;
  void UpdateBatch(const uint64_t* items, size_t n, int64_t delta) override;
  double Estimate(uint64_t item) const override;
  double VarianceEstimate() const override;
  bool CompatibleForMerge(const FrequencyEstimator& other) const override;
  void MergeFrom(const FrequencyEstimator& other) override;
  size_t MemoryBytes() const override;
  void SaveCounters(SerdeWriter& w) const override;
  bool LoadCounters(SerdeReader& r) override;

  /// Single-row estimate (for tests of unbiasedness).
  double RowEstimate(int row, uint64_t item) const;

  uint64_t width() const { return width_; }
  int depth() const { return depth_; }

 private:
  // (bucket, sign) for row i at item x: slice row % pairs_per_eval_ of
  // polynomial row / pairs_per_eval_. Must agree bit-for-bit with the
  // batched slicing in UpdateBatch (simd::SliceBucketSign).
  std::pair<uint64_t, int> Locate(int row, uint64_t item) const {
    const unsigned shift = static_cast<unsigned>(row % pairs_per_eval_) *
                           (lg_width_ + 1);
    const uint64_t u = hashes_[row / pairs_per_eval_](item) >> shift;
    return {u & (width_ - 1), (u >> lg_width_) & 1 ? 1 : -1};
  }

  uint64_t width_;     // always a power of two (requested width rounded up)
  unsigned lg_width_;  // log2(width_)
  int depth_;
  int pairs_per_eval_;  // (bucket, sign) slices per polynomial value
  std::vector<PolyHash<4>> hashes_;  // ceil(depth / pairs_per_eval_) polys
  std::vector<int64_t> counters_;    // row-major d x w
};

}  // namespace streamq

#endif  // STREAMQ_SKETCH_COUNT_SKETCH_H_
