// Count-Sketch (Charikar, Chen, Farach-Colton, ICALP 2002).

#ifndef STREAMQ_SKETCH_COUNT_SKETCH_H_
#define STREAMQ_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "sketch/frequency_estimator.h"
#include "util/hash.h"
#include "util/serde.h"

namespace streamq {

/// w x d counters; row i adds g_i(x)*delta to C[i][h_i(x)] where h_i is
/// pairwise independent and g_i is a 4-wise independent sign. The estimate
/// is the median over rows of g_i(x)*C[i][h_i(x)].
///
/// Implementation note: each row evaluates ONE degree-3 polynomial over
/// GF(2^61-1); the bucket comes from the value mod w and the sign from a
/// high bit. A single 4-wise independent value yields a (bucket, sign) pair
/// that is 4-wise independent jointly -- the independence the analysis
/// needs -- at half the hashing cost of two separate polynomials.
///
/// Unlike Count-Min, each row estimator is unbiased with a symmetric
/// distribution, so the median estimate is unbiased too -- the property the
/// paper's DCS analysis exploits (positive and negative errors cancel when
/// log u of these are summed). The per-row variance is F2/w, and the sketch
/// reports sum-of-squared-counters-of-row-0 / w as its variance estimate
/// (the AMS F2 estimator), which the OLS post-processing consumes.
class CountSketch : public FrequencyEstimator {
 public:
  CountSketch(uint64_t width, int depth, uint64_t seed);

  void Update(uint64_t item, int64_t delta) override;
  double Estimate(uint64_t item) const override;
  double VarianceEstimate() const override;
  bool CompatibleForMerge(const FrequencyEstimator& other) const override;
  void MergeFrom(const FrequencyEstimator& other) override;
  size_t MemoryBytes() const override;
  void SaveCounters(SerdeWriter& w) const override;
  bool LoadCounters(SerdeReader& r) override;

  /// Single-row estimate (for tests of unbiasedness).
  double RowEstimate(int row, uint64_t item) const;

  uint64_t width() const { return width_; }
  int depth() const { return depth_; }

 private:
  // (bucket, sign) for row i at item x, from one polynomial evaluation.
  std::pair<uint64_t, int> Locate(int row, uint64_t item) const {
    const uint64_t u = hashes_[row](item);
    return {u % width_, (u >> 59) & 1 ? 1 : -1};
  }

  uint64_t width_;
  int depth_;
  std::vector<PolyHash<4>> hashes_;  // one 4-wise polynomial per row
  std::vector<int64_t> counters_;    // row-major d x w
};

}  // namespace streamq

#endif  // STREAMQ_SKETCH_COUNT_SKETCH_H_
