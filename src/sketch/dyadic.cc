#include "sketch/dyadic.h"

namespace streamq {

std::vector<DyadicCell> PrefixDecomposition(uint64_t x, int log_u) {
  std::vector<DyadicCell> cells;
  cells.reserve(log_u + 1);
  // i == log_u handles x == 2^log_u (the whole universe as one root cell).
  for (int i = 0; i <= log_u; ++i) {
    const uint64_t path = x >> i;
    if (path & 1) cells.push_back(DyadicCell{i, path - 1});
  }
  return cells;
}

}  // namespace streamq
