// Figure 5 of the paper: the main cash-register comparison on MPCAT-OBS.
//
//   5a: eps vs observed maximum error      5b: eps vs observed average error
//   5c: space vs maximum error             5d: space vs average error
//   5e: update time vs error               5f: space vs update time
//
// One sweep over eps produces all five measurements per algorithm; the
// tables below print the series each sub-figure plots. The paper's dataset
// is the 87.7M-record MPCAT-OBS archive; we use the MPCAT-like generator
// (same universe, bimodal value distribution, chunked-sorted arrival) at a
// laptop-scale n (STREAMQ_SCALE rescales).

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.order = Order::kChunkedSorted;
  spec.n = ScaledN(2'000'000);
  spec.seed = 1;
  std::printf("Fig 5: cash-register algorithms on %s\n", spec.Name().c_str());
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  const std::vector<double> eps_sweep = {1e-2, 3e-3, 1e-3, 3e-4, 1e-4};
  std::vector<RunResult> results;

  for (Algorithm algorithm : CashRegisterAlgorithms()) {
    if (algorithm == Algorithm::kRss) continue;  // turnstile-only baseline
    for (double eps : eps_sweep) {
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = spec.LogUniverse();
      results.push_back(Run(config, data, oracle));
    }
  }

  PrintHeader("Fig 5a/5b: eps vs observed error",
              {"algorithm", "eps", "max_err", "avg_err"});
  for (const RunResult& r : results) {
    PrintRow({r.algorithm, FmtEps(r.eps), FmtErr(r.max_error),
              FmtErr(r.avg_error)});
  }

  PrintHeader("Fig 5c/5d: space vs error",
              {"algorithm", "eps", "space", "max_err", "avg_err"});
  for (const RunResult& r : results) {
    PrintRow({r.algorithm, FmtEps(r.eps), FmtBytes(r.max_memory_bytes),
              FmtErr(r.max_error), FmtErr(r.avg_error)});
  }

  PrintHeader("Fig 5e/5f: time vs error and space",
              {"algorithm", "eps", "ns/update", "space", "avg_err"});
  for (const RunResult& r : results) {
    PrintRow({r.algorithm, FmtEps(r.eps), FmtTime(r.ns_per_update),
              FmtBytes(r.max_memory_bytes), FmtErr(r.avg_error)});
  }
  return 0;
}
