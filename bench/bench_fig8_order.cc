// Figure 8 of the paper: random vs sorted arrival order.
//
// Uniform data, u = 2^32 (paper: n = 10^8; rescaled). Sorted order is the
// adversarial case for the GK family (the summary keeps exact prefixes and
// its size behaviour changes); Random/MRL99 are unaffected in space, and
// the deterministic error guarantee must hold in both orders.

#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  const double eps = 1e-3;
  const uint64_t n = ScaledN(2'000'000);

  PrintHeader("Fig 8: random vs sorted arrival (uniform, u=2^32, eps=1e-3)",
              {"algorithm", "order", "ns/update", "space", "max_err"});
  for (Algorithm algorithm : CashRegisterAlgorithms()) {
    if (algorithm == Algorithm::kRss) continue;
    for (Order order : {Order::kRandom, Order::kSorted}) {
      DatasetSpec spec;
      spec.distribution = Distribution::kUniform;
      spec.log_universe = 32;
      spec.n = n;
      spec.order = order;
      spec.seed = 8;
      const auto data = GenerateDataset(spec);
      const ExactOracle oracle(data);
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = 32;
      const RunResult r = Run(config, data, oracle);
      PrintRow({r.algorithm, order == Order::kRandom ? "random" : "sorted",
                FmtTime(r.ns_per_update), FmtBytes(r.max_memory_bytes),
                FmtErr(r.max_error)});
    }
  }
  return 0;
}
