// Section 4.3 of the paper excludes the random-subset-sum sketch because
// "its performance is much worse" than DCM/DCS. This bench documents that
// exclusion: at matched per-level counter budgets RSS pays its entire width
// on every update (update time ~ sketch size), and to reach a given eps
// guarantee its width must grow as 1/eps^2 instead of 1/eps.

#include <cstdio>
#include <vector>

#include "harness.h"
#include "quantile/dyadic_quantile.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  // Deliberately tiny: RSS pays its whole per-level width on every update,
  // so even this workload makes the cost difference unmistakable.
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.log_universe = 20;
  spec.n = ScaledN(30'000);
  spec.seed = 13;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  PrintHeader("RSS baseline vs DCM/DCS (uniform, u=2^20)",
              {"algorithm", "eps", "space", "ns/update", "avg_err"});
  for (double eps : {3e-2, 1e-2}) {
    for (Algorithm algorithm :
         {Algorithm::kRss, Algorithm::kDcm, Algorithm::kDcs}) {
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = 20;
      config.rss_width_cap = 1 << 10;
      const RunResult r = RunCashRegister(config, data, oracle, 3);
      PrintRow({r.algorithm, FmtEps(eps), FmtBytes(r.max_memory_bytes),
                FmtTime(r.ns_per_update), FmtErr(r.avg_error)});
    }
  }
  std::printf(
      "\nRSS width is capped at 2^10 per level (hurting its accuracy); its "
      "uncapped 1/eps^2 width would dwarf DCM/DCS in both space and update "
      "time, which is why the paper drops it.\n");
  return 0;
}
