// Figure 7 of the paper: varying the stream length.
//
// Uniform data, u = 2^32, eps = 1e-4 (paper); n sweeps over two orders of
// magnitude (the paper used 10^7..10^10 -- rescale with STREAMQ_SCALE).
// Expected shapes: update time flat (decreasing for Random and FastQDigest),
// space flat for GK variants on random-order data and exactly constant for
// Random/MRL99.

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  const double eps = 1e-4;
  const std::vector<uint64_t> n_sweep = {
      ScaledN(100'000), ScaledN(1'000'000), ScaledN(10'000'000)};

  PrintHeader("Fig 7a/7b: varying stream length (uniform, u=2^32, eps=1e-4)",
              {"algorithm", "n", "ns/update", "space"});
  for (Algorithm algorithm : CashRegisterAlgorithms()) {
    if (algorithm == Algorithm::kRss) continue;
    for (uint64_t n : n_sweep) {
      DatasetSpec spec;
      spec.distribution = Distribution::kUniform;
      spec.log_universe = 32;
      spec.n = n;
      spec.seed = 7;
      const auto data = GenerateDataset(spec);
      const ExactOracle oracle(data);
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = 32;
      // Time/space are the story here; one repetition is enough.
      const RunResult r = RunCashRegister(config, data, oracle, 1);
      PrintRow({r.algorithm, std::to_string(n), FmtTime(r.ns_per_update),
                FmtBytes(r.max_memory_bytes)});
    }
  }
  return 0;
}
