// bench_trace_overhead: what does the flight recorder cost per update?
//
// Pushes the same uniform stream through the sharded ingest pipeline in
// every tracing state this build can express and reports ns/update:
//
//   off        -- tracing compiled out (-DSTREAMQ_TRACE=OFF builds only):
//                 the macros expanded to ((void)0), nothing remains;
//   idle       -- instrumentation compiled in, tracer disabled: each macro
//                 site is one relaxed atomic load + branch. This is the
//                 production configuration, and the one the baseline
//                 checker HARD-GATES at 5% over off;
//   recording  -- tracer enabled, every site writing into its ring: the
//                 full cost of capture (clock read + 4 atomic stores per
//                 event), paid only while actively profiling.
//
// One binary only sees one side of the compile-time switch, so a single
// run emits the lanes its build can measure; scripts/merge_trace_overhead.py
// splices lane files from the trace-ON and trace-OFF build trees into
// BENCH_baseline.json's trace_overhead section.
//
// Each lane is the MINIMUM of STREAMQ_REPS (default 5) runs -- min, not
// mean, because the quantity under test is deterministic instruction cost
// and the noise (scheduler, frequency) is strictly additive.
//
// Usage: bench_trace_overhead [--json] [OUT.json]
//   --json         write the lane JSON (to OUT.json, default stdout)
//   (default)      human-readable table on stdout
//
// Scale knobs: STREAMQ_SCALE (base n = 2,000,000), STREAMQ_REPS.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "obs/trace.h"

namespace streamq::bench {
namespace {

struct Lane {
  const char* mode;
  double ns_per_update = 0.0;
  uint64_t events_recorded = 0;
};

ingest::IngestOptions PipelineOptions() {
  ingest::IngestOptions options;
  options.sketch.algorithm = Algorithm::kRandom;
  options.sketch.eps = 0.01;
  options.sketch.log_universe = 24;
  options.sketch.seed = 3;
  options.shards = 2;
  options.ring_capacity = 1 << 14;
  options.batch_size = 256;
  options.publish_interval = 1 << 16;
  return options;
}

double RunOnce(const std::vector<uint64_t>& data) {
  auto pipeline = ingest::IngestPipeline::Create(PipelineOptions());
  if (pipeline == nullptr) {
    std::fprintf(stderr, "bench_trace_overhead: pipeline creation failed\n");
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t v : data) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  const auto stop = std::chrono::steady_clock::now();
  pipeline->Stop();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(data.size());
}

Lane RunLane(const char* mode, bool enabled,
             const std::vector<uint64_t>& data, int reps) {
  Lane lane;
  lane.mode = mode;
  lane.ns_per_update = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    obs::Tracer::Global().Clear();
    obs::Tracer::Global().SetEnabled(enabled);
    const double ns = RunOnce(data);
    obs::Tracer::Global().SetEnabled(false);
    if (rep == 0 || ns < lane.ns_per_update) lane.ns_per_update = ns;
  }
  lane.events_recorded = obs::Tracer::Global().TotalRecorded();
  obs::Tracer::Global().Clear();
  return lane;
}

int Main(int argc, char** argv) {
  bool as_json = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      as_json = true;
    } else {
      out_path = argv[i];
    }
  }

  const uint64_t n = ScaledN(2'000'000);
  const int reps = std::max(Repetitions(), 5);

  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 24;
  spec.seed = 29;
  const std::vector<uint64_t> data = GenerateDataset(spec);

  std::vector<Lane> lanes;
#if STREAMQ_TRACE_ENABLED
  lanes.push_back(RunLane("idle", /*enabled=*/false, data, reps));
  lanes.push_back(RunLane("recording", /*enabled=*/true, data, reps));
#else
  lanes.push_back(RunLane("off", /*enabled=*/false, data, reps));
#endif

  if (!as_json) {
    std::printf("bench_trace_overhead: n=%" PRIu64 " reps=%d (min-of-reps)\n",
                n, reps);
    for (const Lane& lane : lanes) {
      std::printf("  %-10s %8.2f ns/update  %12" PRIu64 " events\n",
                  lane.mode, lane.ns_per_update, lane.events_recorded);
    }
    return 0;
  }

  std::string json = "{\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"lanes\": {\n";
  bool first = true;
  for (const Lane& lane : lanes) {
    if (!first) json += ",\n";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"ns_per_update\": %.3f, "
                  "\"events_recorded\": %" PRIu64 "}",
                  lane.mode, lane.ns_per_update, lane.events_recorded);
    json += buf;
  }
  json += "\n  }\n}\n";

  if (out_path == nullptr) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace streamq::bench

int main(int argc, char** argv) { return streamq::bench::Main(argc, argv); }
