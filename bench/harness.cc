#include "harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>

namespace streamq::bench {

double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("STREAMQ_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

int Repetitions() {
  static const int reps = [] {
    const char* env = std::getenv("STREAMQ_REPS");
    if (env == nullptr) return 5;
    const int v = std::atoi(env);
    return v > 0 ? v : 5;
  }();
  return reps;
}

uint64_t ScaledN(uint64_t base) {
  const double n = static_cast<double>(base) * Scale();
  return std::max<uint64_t>(1000, static_cast<uint64_t>(n));
}

bool IsRandomized(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMrl99:
    case Algorithm::kRandom:
    case Algorithm::kRss:
    case Algorithm::kDcm:
    case Algorithm::kDcs:
    case Algorithm::kDcsPost:
      return true;
    default:
      return false;
  }
}

RunResult RunCashRegister(const SketchConfig& config,
                          const std::vector<uint64_t>& data,
                          const ExactOracle& oracle, int repetitions) {
  RunResult result;
  result.algorithm = AlgorithmName(config.algorithm);
  result.eps = config.eps;
  const int reps = IsRandomized(config.algorithm) ? repetitions : 1;

  double total_seconds = 0.0;
  double total_batch_seconds = 0.0;
  size_t max_memory = 0;
  double sum_max_err = 0.0, sum_avg_err = 0.0;

  // Peak memory is sampled at 256 evenly spaced points of the stream.
  const size_t sample_every = std::max<size_t>(1, data.size() / 256);

  for (int rep = 0; rep < reps; ++rep) {
    SketchConfig cfg = config;
    cfg.seed = config.seed + static_cast<uint64_t>(rep) * 7919;
    auto sketch = MakeSketch(cfg);

    const auto start = std::chrono::steady_clock::now();
    for (uint64_t v : data) sketch->Insert(v);
    const auto stop = std::chrono::steady_clock::now();
    total_seconds += std::chrono::duration<double>(stop - start).count();

    // Batched lane: the same stream through UpdateBatch in 4096-element
    // spans, on a fresh sketch with the same seed. UpdateBatch is
    // bit-identical to the item-wise loop, so the lanes share accuracy and
    // memory; this lane measures only the amortisation (dispatch, metrics,
    // SIMD interiors). Like the memory probe, it runs on the first rep
    // only: the extra full pass would otherwise double RSS's multi-minute
    // share of the baseline for a number whose rep-to-rep spread is noise.
    if (rep == 0) {
      auto batch_sketch = MakeSketch(cfg);
      constexpr size_t kSpan = 4096;
      const auto bstart = std::chrono::steady_clock::now();
      for (size_t off = 0; off < data.size(); off += kSpan) {
        const size_t len = std::min(kSpan, data.size() - off);
        batch_sketch->UpdateBatch(
            std::span<const uint64_t>(data.data() + off, len));
      }
      const auto bstop = std::chrono::steady_clock::now();
      total_batch_seconds +=
          std::chrono::duration<double>(bstop - bstart).count();
    }

    // Re-run memory sampling on a fresh sketch only for the first rep (it
    // is deterministic enough across seeds and the timing loop above must
    // stay unpolluted).
    if (rep == 0) {
      auto probe = MakeSketch(cfg);
      size_t peak = 0;
      size_t i = 0;
      for (uint64_t v : data) {
        probe->Insert(v);
        if (++i % sample_every == 0) {
          peak = std::max(peak, probe->MemoryBytes());
        }
      }
      peak = std::max(peak, probe->MemoryBytes());
      max_memory = peak;
    }

    const ErrorStats stats = EvaluateQuantiles(*sketch, oracle, config.eps);
    sum_max_err += stats.max_error;
    sum_avg_err += stats.avg_error;
  }

  result.ns_per_update =
      total_seconds * 1e9 / (static_cast<double>(data.size()) * reps);
  result.ns_per_update_batch =
      total_batch_seconds * 1e9 / static_cast<double>(data.size());
  result.max_memory_bytes = max_memory;
  result.max_error = sum_max_err / reps;
  result.avg_error = sum_avg_err / reps;
  return result;
}

RunResult Run(const SketchConfig& config, const std::vector<uint64_t>& data,
              const ExactOracle& oracle) {
  return RunCashRegister(config, data, oracle, Repetitions());
}

ParallelIngestResult RunParallelIngest(const SketchConfig& config,
                                       const std::vector<uint64_t>& data,
                                       const ExactOracle& oracle,
                                       int threads) {
  ingest::IngestOptions options;
  options.sketch = config;
  options.shards = threads;
  auto pipeline = ingest::IngestPipeline::Create(options);
  if (pipeline == nullptr) {
    std::fprintf(stderr,
                 "RunParallelIngest: %s cannot back a pipeline "
                 "(not mergeable or not clonable)\n",
                 AlgorithmName(config.algorithm).c_str());
    std::exit(1);
  }

  // End-to-end timing: everything between the first Push and the moment
  // the merged view covers the whole stream. This charges the pipeline for
  // routing, queueing, sharded inserts, and the final merge -- the number a
  // deployment would see, and the honest denominator for the scaling
  // claim.
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t v : data) pipeline->Push(Update{v, +1});
  pipeline->Flush();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();

  ParallelIngestResult result;
  result.threads = threads;
  result.ns_per_update = seconds * 1e9 / static_cast<double>(data.size());
  result.updates_per_sec = static_cast<double>(data.size()) / seconds;

  // Merged-view accuracy on the same phi grid the single-stream harness
  // uses (capped like EvaluateQuantiles to keep dense grids affordable).
  const size_t grid = std::min<size_t>(
      static_cast<size_t>(1.0 / config.eps), size_t{1000});
  double max_error = 0.0;
  for (size_t i = 1; i < grid; ++i) {
    const double phi = static_cast<double>(i) / static_cast<double>(grid);
    const uint64_t q = pipeline->Query(phi);
    max_error = std::max(max_error, oracle.QuantileError(q, phi));
  }
  result.max_error = max_error;

  pipeline->Stop();
  result.peak_memory_bytes = pipeline->PeakMemoryBytes();
  result.ring_bytes = pipeline->RingBytes();
  for (int s = 0; s < pipeline->shard_count(); ++s) {
    result.ring_full_stalls += pipeline->shard_stats(s).ring_full_stalls.load();
  }
  result.publishes = pipeline->stats().publishes.load();
  return result;
}

void PrintHeader(const std::string& title, const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------------");
  std::printf("\n");
  std::fflush(stdout);
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FmtEps(double eps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0e", eps);
  return buf;
}

std::string FmtErr(double err) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", err);
  return buf;
}

std::string FmtBytes(size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKB", static_cast<double>(bytes) / (1 << 10));
  }
  return buf;
}

std::string FmtTime(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fns", ns);
  return buf;
}

}  // namespace streamq::bench
