// Figure 6 of the paper: is q-digest ever the method of choice?
//
// FastQDigest on normal data with log u in {16, 24, 32}, against the best
// deterministic (GKAdaptive) and randomized (Random) comparison-based
// algorithms, which are unaffected by the universe size. The paper's
// conclusion: q-digest is competitive only at log u = 16 and tiny eps --
// where exact counting would fit in 0.25 MB anyway.

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  const std::vector<double> eps_sweep = {1e-2, 1e-3, 1e-4};
  const uint64_t n = ScaledN(1'000'000);

  PrintHeader("Fig 6a/6b: q-digest vs universe size (normal data)",
              {"algorithm", "log_u", "eps", "space", "ns/update", "avg_err"});
  for (int log_u : {16, 24, 32}) {
    DatasetSpec spec;
    spec.distribution = Distribution::kNormal;
    spec.sigma = 0.15;
    spec.log_universe = log_u;
    spec.n = n;
    spec.seed = 6;
    const auto data = GenerateDataset(spec);
    const ExactOracle oracle(data);
    for (double eps : eps_sweep) {
      SketchConfig config;
      config.algorithm = Algorithm::kFastQDigest;
      config.eps = eps;
      config.log_universe = log_u;
      const RunResult r = Run(config, data, oracle);
      PrintRow({r.algorithm, std::to_string(log_u), FmtEps(eps),
                FmtBytes(r.max_memory_bytes), FmtTime(r.ns_per_update),
                FmtErr(r.avg_error)});
    }
  }

  // Comparison-based references (universe-independent): one dataset suffices.
  DatasetSpec spec;
  spec.distribution = Distribution::kNormal;
  spec.sigma = 0.15;
  spec.log_universe = 32;
  spec.n = n;
  spec.seed = 6;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  for (Algorithm algorithm : {Algorithm::kGkAdaptive, Algorithm::kRandom}) {
    for (double eps : eps_sweep) {
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = 32;
      const RunResult r = Run(config, data, oracle);
      PrintRow({r.algorithm, "any", FmtEps(eps), FmtBytes(r.max_memory_bytes),
                FmtTime(r.ns_per_update), FmtErr(r.avg_error)});
    }
  }
  std::printf(
      "\nNote: at log_u=16, exact counts of all 2^16 values need only "
      "256KB -- the paper's point that q-digest never wins.\n");
  return 0;
}
