// bench_parallel_ingest: throughput scaling of the sharded ingest pipeline
// (src/ingest/) across worker-thread counts, plus the accuracy of the
// merged query view against ground truth.
//
// Not a paper figure: the paper's experiments are single-threaded. This
// bench backs the repo's parallel-ingest subsystem (DESIGN.md section 10):
// it sweeps 1..8 shard workers over the mergeable algorithms and reports
// end-to-end updates/sec (Push of the whole stream + Flush), the speedup
// over the 1-shard pipeline, the merged view's max rank error, and the
// pipeline's peak memory (sum of shard sketch peaks + query-view buffers).
//
// Interpreting the speedup column: shard workers only help when the
// machine has cores for them. On a single-core host the sweep measures the
// pipeline's overhead, not its scaling -- the binary prints the core count
// it sees so the numbers are read in context.
//
// Scale knobs: STREAMQ_SCALE as everywhere (base n = 2,000,000).

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"

namespace streamq::bench {
namespace {

int Main() {
  const uint64_t n = ScaledN(2'000'000);
  const double eps = 0.01;
  std::printf("parallel ingest sweep: n=%llu eps=%.2g hardware threads=%u\n",
              static_cast<unsigned long long>(n), eps,
              std::thread::hardware_concurrency());

  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 29;
  spec.order = Order::kRandom;
  const std::vector<uint64_t> data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  for (Algorithm algorithm : {Algorithm::kRandom, Algorithm::kDcs}) {
    SketchConfig config;
    config.algorithm = algorithm;
    config.eps = eps;
    config.log_universe = spec.LogUniverse();

    PrintHeader(AlgorithmName(algorithm) + " / " + spec.Name(),
                {"threads", "ns/upd", "Mupd/s", "speedup", "maxerr",
                 "peak mem", "rings", "stalls"});
    double base_rate = 0.0;
    for (int threads : {1, 2, 4, 8}) {
      const ParallelIngestResult r =
          RunParallelIngest(config, data, oracle, threads);
      if (threads == 1) base_rate = r.updates_per_sec;
      char speedup[32], rate[32], stalls[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    r.updates_per_sec / base_rate);
      std::snprintf(rate, sizeof(rate), "%.2f", r.updates_per_sec / 1e6);
      std::snprintf(stalls, sizeof(stalls), "%llu",
                    static_cast<unsigned long long>(r.ring_full_stalls));
      PrintRow({std::to_string(threads), FmtTime(r.ns_per_update), rate,
                speedup, FmtErr(r.max_error), FmtBytes(r.peak_memory_bytes),
                FmtBytes(r.ring_bytes), stalls});
    }
  }
  return 0;
}

}  // namespace
}  // namespace streamq::bench

int main() { return streamq::bench::Main(); }
