// Robustness experiment: communication cost and answer quality of the
// distributed monitor as the channel degrades.
//
// Sweeps the drop rate of both channel directions from 0 to 0.5 (plus a
// combined drop+duplicate+reorder+corrupt row) with everything else held
// fixed: 4 sites, eps = 0.05, a skewed per-site uniform workload, fixed
// seeds. Reported per row:
//   bytes       site->coordinator bytes offered (retransmits included)
//   ship/rtx    initial shipments / retransmissions
//   rejected    coordinator-rejected deliveries (corrupt+stale+malformed)
//   staleness   StalenessBound() right after the last observation
//   max_err     max normalised rank error vs the exact oracle after
//               quiescing (should stay ~eps regardless of the drop rate)
//
// The point of the table: retries buy back correctness (max_err flat), and
// the price is bandwidth (bytes grow with drop rate), exactly the trade the
// fault model predicts.

#include <cstdio>
#include <string>
#include <vector>

#include "distributed/monitor.h"
#include "exact/exact_oracle.h"
#include "harness.h"
#include "util/random.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  const double eps = 0.05;
  const int kSites = 4;
  const uint64_t n = ScaledN(200'000);

  struct Row {
    std::string name;
    FaultSpec faults;
  };
  std::vector<Row> rows;
  for (double drop : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    FaultSpec f;
    f.drop = drop;
    f.min_delay = 1;
    f.max_delay = 8;
    char name[32];
    std::snprintf(name, sizeof(name), "drop=%.1f", drop);
    rows.push_back({name, f});
  }
  {
    FaultSpec f;
    f.drop = 0.2;
    f.duplicate = 0.2;
    f.reorder = 0.2;
    f.corrupt = 0.2;
    f.min_delay = 1;
    f.max_delay = 12;
    rows.push_back({"combined(0.2)", f});
  }

  PrintHeader("Distributed monitor vs channel faults (4 sites, eps=0.05)",
              {"faults", "bytes", "ship/rtx", "rejected", "staleness",
               "max_err"});

  for (const Row& row : rows) {
    MonitorOptions options;
    options.data_faults = row.faults;
    options.ack_faults = row.faults;
    options.seed = 17;
    DistributedQuantileMonitor monitor(kSites, eps, -1.0, options);
    Xoshiro256 rng(42);
    std::vector<uint64_t> observed;
    observed.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const int site = static_cast<int>(rng.Below(kSites));
      const uint64_t value =
          static_cast<uint64_t>(site) * 1'000'000 + rng.Below(1'000'000);
      monitor.Observe(site, value);
      observed.push_back(value);
    }
    const uint64_t staleness = monitor.StalenessBound();
    monitor.Quiesce();

    const ExactOracle oracle(observed);
    double max_err = 0.0;
    for (int q = 1; q <= 99; ++q) {
      const double phi = q / 100.0;
      max_err = std::max(max_err,
                         oracle.QuantileError(monitor.Query(phi), phi));
    }

    const auto& cs = monitor.coordinator().stats();
    char shiprtx[48], rejected[32];
    std::snprintf(shiprtx, sizeof(shiprtx), "%zu/%zu",
                  monitor.ShipmentCount() - monitor.RetransmitCount(),
                  monitor.RetransmitCount());
    std::snprintf(rejected, sizeof(rejected), "%zu",
                  cs.rejected_corrupt + cs.rejected_stale +
                      cs.rejected_malformed);
    PrintRow({row.name, FmtBytes(monitor.CommunicationBytes()), shiprtx,
              rejected, std::to_string(staleness), FmtErr(max_err)});
  }
  return 0;
}
