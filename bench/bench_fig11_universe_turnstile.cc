// Figure 11 of the paper: universe size and the turnstile algorithms.
//
// Normal data with sigma = 0.15, u in {2^16, 2^32}. The universe sets the
// height of the dyadic hierarchy, so a smaller universe means smaller and
// faster sketches at the same accuracy. (The paper's u=2^16 curves halt
// early because the algorithms then store all frequencies exactly.)

#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  const std::vector<double> eps_sweep = {3e-2, 1e-2, 3e-3, 1e-3};

  PrintHeader("Fig 11a/11b: turnstile algorithms vs universe size "
              "(normal, sigma=0.15)",
              {"algorithm", "log_u", "eps", "space", "ns/update", "avg_err"});
  for (int log_u : {16, 32}) {
    DatasetSpec spec;
    spec.distribution = Distribution::kNormal;
    spec.sigma = 0.15;
    spec.log_universe = log_u;
    spec.n = ScaledN(1'000'000);
    spec.seed = 11;
    const auto data = GenerateDataset(spec);
    const ExactOracle oracle(data);
    for (Algorithm algorithm : TurnstileAlgorithms()) {
      for (double eps : eps_sweep) {
        SketchConfig config;
        config.algorithm = algorithm;
        config.eps = eps;
        config.log_universe = log_u;
        const RunResult r = Run(config, data, oracle);
        PrintRow({r.algorithm, std::to_string(log_u), FmtEps(eps),
                  FmtBytes(r.max_memory_bytes), FmtTime(r.ns_per_update),
                  FmtErr(r.avg_error)});
      }
    }
  }
  return 0;
}
