// bench_baseline: machine-readable performance/accuracy baseline over every
// algorithm of Table 1 (plus DCS+Post), on a small grid of dataset types.
//
// Unlike the per-figure binaries (human-readable tables for one figure
// each), this one emits a single JSON file consumed by
// scripts/check_bench_json.py, which validates the schema and flags
// ns/update regressions beyond 20% against the committed BENCH_baseline.json.
//
// Usage: bench_baseline [output.json]     (default: BENCH_baseline.json)
// Scale knobs: STREAMQ_SCALE / STREAMQ_REPS as in every other bench binary.
// RSS is ~4 orders of magnitude slower per update than the rest (its
// update touches every counter of every dyadic level, ~8 ms each at the
// factory's default width cap); it runs on a shorter prefix so the whole
// baseline stays in laptop territory.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness.h"

#if STREAMQ_DURABILITY_ENABLED
#include <chrono>

#include "durability/storage.h"
#include "obs/metrics.h"
#endif

namespace streamq::bench {
namespace {

struct DatasetCase {
  const char* tag;  // stable id used in the JSON and the checker
  DatasetSpec spec;
};

std::vector<DatasetCase> BaselineDatasets(uint64_t n) {
  DatasetCase uniform{"uniform-random", {}};
  uniform.spec.distribution = Distribution::kUniform;
  uniform.spec.n = n;
  uniform.spec.log_universe = 29;
  uniform.spec.order = Order::kRandom;

  DatasetCase normal{"normal-random", {}};
  normal.spec.distribution = Distribution::kNormal;
  normal.spec.n = n;
  normal.spec.log_universe = 29;
  normal.spec.sigma = 0.15;
  normal.spec.order = Order::kRandom;

  DatasetCase sorted{"uniform-sorted", {}};
  sorted.spec.distribution = Distribution::kUniform;
  sorted.spec.n = n;
  sorted.spec.log_universe = 29;
  sorted.spec.order = Order::kSorted;

  DatasetCase skewed{"loguniform-random", {}};
  skewed.spec.distribution = Distribution::kLogUniform;
  skewed.spec.n = n;
  skewed.spec.log_universe = 29;
  skewed.spec.order = Order::kRandom;

  return {uniform, normal, sorted, skewed};
}

// JSON-escapes nothing because every string we emit is a [A-Za-z0-9_.+-]
// tag; kept as a function so a future fancy tag fails loudly here.
std::string JsonString(const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(stderr, "tag not JSON-safe: %s\n", s.c_str());
      std::exit(1);
    }
  }
  return "\"" + s + "\"";
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_baseline.json";

  const uint64_t n = ScaledN(500'000);
  // RSS updates every counter of every dyadic level per insert -- ~8 ms
  // each. A shorter prefix keeps its run honest but bounded.
  const uint64_t rss_n = std::min<uint64_t>(n, ScaledN(20'000));
  const int reps = Repetitions();
  const double eps = 0.01;

  std::string json;
  json += "{\n";
  json += "  \"schema_version\": 7,\n";
  json += "  \"eps\": 0.01,\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"rss_n\": " + std::to_string(rss_n) + ",\n";
  json += "  \"entries\": [\n";

  bool first = true;
  for (const DatasetCase& dataset : BaselineDatasets(n)) {
    std::fprintf(stderr, "dataset %s (n=%" PRIu64 ")\n", dataset.tag,
                 dataset.spec.n);
    const std::vector<uint64_t> data = GenerateDataset(dataset.spec);
    const ExactOracle oracle(data);

    // RSS prefix workload, with its own oracle.
    DatasetSpec rss_spec = dataset.spec;
    rss_spec.n = rss_n;
    const std::vector<uint64_t> rss_data = GenerateDataset(rss_spec);
    const ExactOracle rss_oracle(rss_data);

    for (Algorithm algorithm :
         {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
          Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
          Algorithm::kRss, Algorithm::kDcm, Algorithm::kDcs,
          Algorithm::kDcsPost}) {
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = dataset.spec.LogUniverse();

      const bool is_rss = algorithm == Algorithm::kRss;
      const RunResult r =
          RunCashRegister(config, is_rss ? rss_data : data,
                          is_rss ? rss_oracle : oracle, reps);
      std::fprintf(stderr,
                   "  %-10s %10.1f ns/update  %10.1f ns/update(batch)  "
                   "%9zu B  maxerr %.5f\n",
                   r.algorithm.c_str(), r.ns_per_update, r.ns_per_update_batch,
                   r.max_memory_bytes, r.max_error);

      if (!first) json += ",\n";
      first = false;
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"dataset\": %s, \"algorithm\": %s, "
                    "\"ns_per_update\": %.3f, \"ns_per_update_batch\": %.3f, "
                    "\"max_memory_bytes\": %zu, "
                    "\"max_rank_error\": %.6f, \"avg_rank_error\": %.6f}",
                    JsonString(dataset.tag).c_str(),
                    JsonString(r.algorithm).c_str(), r.ns_per_update,
                    r.ns_per_update_batch, r.max_memory_bytes, r.max_error,
                    r.avg_error);
      json += buf;
    }
  }
  json += "\n  ],\n";

  // Parallel-ingest sweep (schema_version 2): the sharded pipeline over
  // the uniform dataset with the Random summary, 1..8 shard workers. The
  // checker validates schema and merged accuracy but deliberately runs no
  // ns/update regression gate on this section -- thread-scheduling noise
  // dwarfs the 20% budget, especially on small hosts.
  {
    DatasetSpec spec = BaselineDatasets(n)[0].spec;  // uniform-random
    const std::vector<uint64_t> data = GenerateDataset(spec);
    const ExactOracle oracle(data);
    SketchConfig config;
    config.algorithm = Algorithm::kRandom;
    config.eps = eps;
    config.log_universe = spec.LogUniverse();

    json += "  \"parallel_ingest\": {\n";
    json += "    \"algorithm\": " + JsonString("Random") + ",\n";
    json += "    \"dataset\": " + JsonString("uniform-random") + ",\n";
    json += "    \"n\": " + std::to_string(n) + ",\n";
    json += "    \"sweep\": [\n";
    bool first_sweep = true;
    for (int threads : {1, 2, 4, 8}) {
      const ParallelIngestResult r =
          RunParallelIngest(config, data, oracle, threads);
      std::fprintf(stderr,
                   "  ingest %d thread(s) %10.1f ns/update  %9zu B  "
                   "maxerr %.5f\n",
                   threads, r.ns_per_update, r.peak_memory_bytes, r.max_error);
      if (!first_sweep) json += ",\n";
      first_sweep = false;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "      {\"threads\": %d, \"ns_per_update\": %.3f, "
                    "\"updates_per_sec\": %.1f, "
                    "\"merged_max_rank_error\": %.6f, "
                    "\"peak_memory_bytes\": %zu}",
                    r.threads, r.ns_per_update, r.updates_per_sec,
                    r.max_error, r.peak_memory_bytes);
      json += buf;
    }
    json += "\n    ]\n  },\n";
  }

  // Durability section (schema_version 3): the WAL's hot-path cost and
  // recovery latency, both on in-memory storage so the numbers measure
  // the pipeline's framing/CRC/buffering work, not the host's disk. The
  // checker validates structure and sanity only -- like the ingest sweep,
  // wall-clock here is thread-timing dependent. `null` in a
  // -DSTREAMQ_DURABILITY=OFF build.
#if STREAMQ_DURABILITY_ENABLED
  {
    DatasetSpec spec = BaselineDatasets(n)[0].spec;  // uniform-random
    const std::vector<uint64_t> data = GenerateDataset(spec);
    SketchConfig config;
    config.algorithm = Algorithm::kRandom;
    config.eps = eps;
    config.log_universe = spec.LogUniverse();

    json += "  \"durability\": {\n";
    json += "    \"algorithm\": " + JsonString("Random") + ",\n";
    json += "    \"dataset\": " + JsonString("uniform-random") + ",\n";
    json += "    \"n\": " + std::to_string(n) + ",\n";
    json += "    \"modes\": [\n";
    durability::MemStorage storage;
    bool first_mode = true;
    for (const bool wal_on : {false, true}) {
      ingest::IngestOptions options;
      options.sketch = config;
      options.shards = 4;
      if (wal_on) {
        options.durability.enabled = true;
        options.durability.storage = &storage;
        options.durability.dir = "baseline";
      }
      uint64_t wal_bytes = 0;
      uint64_t wal_syncs = 0;
      uint64_t checkpoints = 0;
      double ns_per_update = 0.0;
      {
        auto pipeline = ingest::IngestPipeline::Create(options);
        if (pipeline == nullptr) {
          std::fprintf(stderr, "durability baseline: Create failed\n");
          return 1;
        }
        const auto start = std::chrono::steady_clock::now();
        for (uint64_t v : data) pipeline->Push(Update{v, +1});
        pipeline->Flush();
        const auto stop = std::chrono::steady_clock::now();
        ns_per_update =
            std::chrono::duration<double, std::nano>(stop - start).count() /
            static_cast<double>(data.size());
        pipeline->Stop();
        if (wal_on) {
          obs::MetricsRegistry registry;
          pipeline->PublishMetrics(registry, "ingest");
          for (int s = 0; s < pipeline->shard_count(); ++s) {
            const std::string p = "ingest.shard" + std::to_string(s);
            if (const obs::Counter* c = registry.FindCounter(p + ".wal_bytes"))
              wal_bytes += c->value();
            if (const obs::Counter* c = registry.FindCounter(p + ".wal_syncs"))
              wal_syncs += c->value();
          }
          checkpoints = pipeline->stats().checkpoints.load();
        }
      }
      double recovery_ms = 0.0;
      uint64_t replayed = 0;
      if (wal_on) {
        const auto start = std::chrono::steady_clock::now();
        auto recovered = ingest::IngestPipeline::Create(options);
        const auto stop = std::chrono::steady_clock::now();
        if (recovered == nullptr) {
          std::fprintf(stderr, "durability baseline: recovery failed\n");
          return 1;
        }
        recovery_ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        replayed = recovered->recovery().replayed_updates;
        recovered->Stop();
      }
      std::fprintf(stderr,
                   "  durability %-7s %10.1f ns/update  wal %" PRIu64
                   " B  recovery %.1f ms\n",
                   wal_on ? "wal_on" : "wal_off", ns_per_update, wal_bytes,
                   recovery_ms);
      if (!first_mode) json += ",\n";
      first_mode = false;
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "      {\"mode\": %s, \"ns_per_update\": %.3f, "
                    "\"wal_bytes\": %" PRIu64 ", \"wal_syncs\": %" PRIu64
                    ", \"checkpoints\": %" PRIu64
                    ", \"recovery_ms\": %.3f, \"replayed_updates\": %" PRIu64
                    "}",
                    JsonString(wal_on ? "wal_mem" : "wal_off").c_str(),
                    ns_per_update, wal_bytes, wal_syncs, checkpoints,
                    recovery_ms, replayed);
      json += buf;
    }
    json += "\n    ]\n  },\n";
  }
#else
  json += "  \"durability\": null,\n";
#endif

  // Trace-overhead section (schema_version 4): always null here. The
  // comparison needs binaries from TWO build configurations (the "off"
  // lane is a -DSTREAMQ_TRACE=OFF build), so no single bench_baseline run
  // can fill it in. Run bench_trace_overhead --json in both builds and
  // splice the lanes into the committed baseline with
  // scripts/merge_trace_overhead.py; check_bench_json.py gates the merged
  // idle lane at 5% over off.
  json += "  \"trace_overhead\": null,\n";

  // Cluster section (schema_version 5): always null here -- the cluster
  // sweep (throughput / merge latency vs node count, failover recovery)
  // is its own multi-minute workload and lives in bench_cluster. Run
  // bench_cluster --json and splice the section into the committed
  // baseline with scripts/merge_cluster_bench.py; check_bench_json.py
  // validates the merged structure.
  json += "  \"cluster\": null,\n";

  // Net section (schema_version 7): always null here -- the network sweep
  // (insert + batch-insert throughput and query latency vs client count
  // over TCP loopback) lives in bench_net. Run bench_net --json and
  // splice the section into the committed baseline with
  // scripts/merge_net_bench.py; check_bench_json.py gates the merged
  // 1-client batch-insert lane at >= 10x single-item inserts/sec.
  json += "  \"net\": null\n";
  json += "}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace streamq::bench

int main(int argc, char** argv) { return streamq::bench::Main(argc, argv); }
