// Figure 10 of the paper: the main turnstile comparison (DCM vs DCS vs
// Post) on the MPCAT-like data.
//
//   10a/10b: eps vs observed max/avg error
//   10c:     space vs error       10d: time vs error     10e: space vs time
//
// Expected shapes: actual max error ~ eps/10; DCS needs ~1/10 of DCM's
// space at equal error; Post reduces DCS error by 60-80% at no streaming
// cost; and everything is roughly an order of magnitude above the best
// cash-register algorithms (compare bench_fig5).

#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.order = Order::kChunkedSorted;
  spec.n = ScaledN(1'000'000);
  spec.seed = 10;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  const std::vector<double> eps_sweep = {1e-1, 3e-2, 1e-2, 3e-3, 1e-3};
  std::vector<RunResult> results;
  for (Algorithm algorithm : TurnstileAlgorithms()) {
    for (double eps : eps_sweep) {
      SketchConfig config;
      config.algorithm = algorithm;
      config.eps = eps;
      config.log_universe = spec.LogUniverse();
      results.push_back(Run(config, data, oracle));
    }
  }

  PrintHeader("Fig 10a/10b: eps vs observed error (turnstile)",
              {"algorithm", "eps", "max_err", "avg_err"});
  for (const RunResult& r : results) {
    PrintRow({r.algorithm, FmtEps(r.eps), FmtErr(r.max_error),
              FmtErr(r.avg_error)});
  }

  PrintHeader("Fig 10c/10d/10e: space and time vs error",
              {"algorithm", "eps", "space", "ns/update", "avg_err"});
  for (const RunResult& r : results) {
    PrintRow({r.algorithm, FmtEps(r.eps), FmtBytes(r.max_memory_bytes),
              FmtTime(r.ns_per_update), FmtErr(r.avg_error)});
  }
  return 0;
}
