// Shared measurement harness for the per-figure bench binaries.
//
// Each bench binary reproduces one table or figure of the paper: it
// generates the figure's workload, runs the algorithms across the figure's
// parameter sweep, and prints the series the figure plots (plus the
// measurements the paper's text quotes). Scale knobs:
//   STREAMQ_SCALE  multiplies every stream length (default 1; the defaults
//                  are laptop-sized versions of the paper's 10^7..10^10).
//   STREAMQ_REPS   repetitions for randomized algorithms (default 5;
//                  the paper uses 100).

#ifndef STREAMQ_BENCH_HARNESS_H_
#define STREAMQ_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exact/error_metrics.h"
#include "exact/exact_oracle.h"
#include "ingest/ingest_pipeline.h"
#include "quantile/factory.h"
#include "quantile/quantile_sketch.h"
#include "stream/generators.h"

namespace streamq::bench {

/// Stream-length multiplier from STREAMQ_SCALE (default 1.0).
double Scale();

/// Repetitions for randomized algorithms from STREAMQ_REPS (default 5).
int Repetitions();

/// n scaled by STREAMQ_SCALE, with a floor of 1000.
uint64_t ScaledN(uint64_t base);

/// Result of one (algorithm, workload, eps) run, averaged over repetitions
/// for randomized algorithms.
struct RunResult {
  std::string algorithm;
  double eps = 0.0;
  double ns_per_update = 0.0;   // average wall-clock time per stream update
  /// Same stream fed through UpdateBatch in 4096-element spans on a fresh
  /// same-seed sketch (bit-identical state, so accuracy is shared with the
  /// item-wise lane; only amortisation differs).
  double ns_per_update_batch = 0.0;
  size_t max_memory_bytes = 0;  // maximum MemoryBytes() over the stream
  double max_error = 0.0;       // observed Kolmogorov-Smirnov divergence
  double avg_error = 0.0;       // observed average rank error
};

/// Feeds `data` into a fresh sketch from `config` (seed varied per
/// repetition), measuring update time, peak memory, and observed errors.
RunResult RunCashRegister(const SketchConfig& config,
                          const std::vector<uint64_t>& data,
                          const ExactOracle& oracle, int repetitions);

/// Same, with deterministic algorithms run once regardless of repetitions.
RunResult Run(const SketchConfig& config, const std::vector<uint64_t>& data,
              const ExactOracle& oracle);

/// True for the randomized algorithms (repetitions matter).
bool IsRandomized(Algorithm algorithm);

/// Result of one parallel-ingest run (src/ingest/): the whole stream pushed
/// through an IngestPipeline with `threads` shard workers, flushed, and the
/// merged view evaluated against ground truth.
struct ParallelIngestResult {
  int threads = 0;
  double ns_per_update = 0.0;   // end-to-end: Push of all updates + Flush
  double updates_per_sec = 0.0;
  double max_error = 0.0;       // merged-view KS divergence on the phi grid
  size_t peak_memory_bytes = 0; // sum of shard peaks + view buffers
  size_t ring_bytes = 0;        // fixed SPSC ring footprint
  uint64_t ring_full_stalls = 0;
  uint64_t publishes = 0;
};

/// Runs the sharded pipeline once over `data`. The config must name a
/// mergeable, clonable algorithm (the pipeline's Create contract); the
/// process aborts with a message otherwise -- bench binaries treat that as
/// a configuration error, not a measurable case.
ParallelIngestResult RunParallelIngest(const SketchConfig& config,
                                       const std::vector<uint64_t>& data,
                                       const ExactOracle& oracle, int threads);

/// Fixed-width table output.
void PrintHeader(const std::string& title, const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string FmtEps(double eps);
std::string FmtErr(double err);
std::string FmtBytes(size_t bytes);
std::string FmtTime(double ns);

}  // namespace streamq::bench

#endif  // STREAMQ_BENCH_HARNESS_H_
