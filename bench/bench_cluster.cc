// bench_cluster: the cluster tier's three deployment numbers (DESIGN.md
// section 13) -- sustained cluster-wide insert throughput vs node count,
// coordinator merge (query) latency vs node count, and recovery latency
// after a node kill.
//
// Not a paper figure: the paper measures single-process summaries. This
// bench backs the cluster subsystem the same way bench_durability backs
// the WAL: it answers what the node/coordinator protocol costs per
// appended update (pipeline push + count-triggered shipping + coordinator
// validation, all inside the virtual-time harness), what a cluster-wide
// quantile costs as nodes are added (one k-way sketch merge into a fresh
// scratch), and how long a killed node takes to come back (checkpoint +
// WAL recovery, then replay + epoch resync).
//
// Channels are perfect here: the fault mix moves convergence time, not
// the per-append protocol cost, and the cluster fault-matrix tests own
// that axis. Storage is in-memory so recovery_ms measures the pipeline's
// scan/replay work, not the host's disk.
//
// Usage: bench_cluster [--json] [OUT.json]
//   --json         write the BENCH_baseline.json "cluster" section (to
//                  OUT.json, default stdout; splice into the committed
//                  baseline with scripts/merge_cluster_bench.py)
//
// Scale knobs: STREAMQ_SCALE as everywhere (base n = 200,000).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"

#if STREAMQ_DURABILITY_ENABLED

#include "cluster/cluster.h"
#include "durability/storage.h"

namespace streamq::bench {
namespace {

constexpr double kEps = 0.01;

struct SweepPoint {
  int nodes = 0;
  double ns_per_append = 0.0;
  double inserts_per_sec = 0.0;
  double merge_latency_us = 0.0;
  size_t coordinator_memory_bytes = 0;
};

struct FailoverPoint {
  int nodes = 0;
  double recovery_ms = 0.0;
  uint64_t replayed_updates = 0;
  double resync_ms = 0.0;
};

cluster::ClusterOptions BenchOptions(
    int nodes, const std::vector<durability::Storage*>& storage) {
  cluster::ClusterOptions options;
  options.nodes = nodes;
  options.node_pipeline.sketch.algorithm = Algorithm::kRandom;
  options.node_pipeline.sketch.eps = kEps;
  options.node_pipeline.sketch.log_universe = 24;
  options.node_pipeline.sketch.seed = 7;
  options.node_pipeline.shards = 2;
  options.seed = 5;
  options.node_storage = storage;
  return options;
}

SweepPoint RunSweepPoint(int nodes, const std::vector<uint64_t>& data) {
  std::vector<std::unique_ptr<durability::MemStorage>> disks;
  std::vector<durability::Storage*> storage;
  for (int i = 0; i < nodes; ++i) {
    disks.push_back(std::make_unique<durability::MemStorage>());
    storage.push_back(disks.back().get());
  }
  auto cluster = cluster::QuantileCluster::Create(BenchOptions(nodes, storage));
  if (cluster == nullptr) {
    std::fprintf(stderr, "bench_cluster: cluster creation failed\n");
    std::exit(1);
  }

  SweepPoint point;
  point.nodes = nodes;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t v : data) cluster->Append(v);
  const auto appended = std::chrono::steady_clock::now();
  if (!cluster->Quiesce()) {
    std::fprintf(stderr, "bench_cluster: %d-node cluster failed to quiesce\n",
                 nodes);
    std::exit(1);
  }
  const double append_ns =
      std::chrono::duration<double, std::nano>(appended - start).count();
  point.ns_per_append = append_ns / static_cast<double>(data.size());
  point.inserts_per_sec = 1e9 * static_cast<double>(data.size()) / append_ns;

  // Merge latency: each query merges the k node sketches into a fresh
  // scratch; average over enough pulls to swamp the clock.
  constexpr int kQueryReps = 50;
  const auto q_start = std::chrono::steady_clock::now();
  for (int r = 0; r < kQueryReps; ++r) {
    (void)cluster->Query(0.5 + 0.001 * r);
  }
  const auto q_stop = std::chrono::steady_clock::now();
  point.merge_latency_us =
      std::chrono::duration<double, std::micro>(q_stop - q_start).count() /
      kQueryReps;
  point.coordinator_memory_bytes = cluster->coordinator().MemoryBytes();
  return point;
}

FailoverPoint RunFailover(int nodes, const std::vector<uint64_t>& data) {
  std::vector<std::unique_ptr<durability::MemStorage>> disks;
  std::vector<durability::Storage*> storage;
  for (int i = 0; i < nodes; ++i) {
    disks.push_back(std::make_unique<durability::MemStorage>());
    storage.push_back(disks.back().get());
  }
  auto cluster = cluster::QuantileCluster::Create(BenchOptions(nodes, storage));
  if (cluster == nullptr) {
    std::fprintf(stderr, "bench_cluster: cluster creation failed\n");
    std::exit(1);
  }
  // Crash mid-stream so the WAL tail past the last checkpoint is real.
  const uint64_t crash_at = data.size() * 3 / 5;
  for (uint64_t i = 0; i < crash_at; ++i) cluster->Append(data[i]);
  const int victim = nodes - 1;
  cluster->KillNode(victim);

  FailoverPoint point;
  point.nodes = nodes;
  const auto r_start = std::chrono::steady_clock::now();
  if (!cluster->RestartNode(victim)) {
    std::fprintf(stderr, "bench_cluster: node restart failed\n");
    std::exit(1);
  }
  const auto r_stop = std::chrono::steady_clock::now();
  point.recovery_ms =
      std::chrono::duration<double, std::milli>(r_stop - r_start).count();

  const auto s_start = std::chrono::steady_clock::now();
  point.replayed_updates = cluster->ReplayNode(victim);
  if (!cluster->Quiesce()) {
    std::fprintf(stderr, "bench_cluster: post-recovery quiesce failed\n");
    std::exit(1);
  }
  const auto s_stop = std::chrono::steady_clock::now();
  point.resync_ms =
      std::chrono::duration<double, std::milli>(s_stop - s_start).count();

  for (uint64_t i = crash_at; i < data.size(); ++i) cluster->Append(data[i]);
  if (!cluster->Quiesce() || cluster->StalenessBound() != 0) {
    std::fprintf(stderr, "bench_cluster: final convergence failed\n");
    std::exit(1);
  }
  return point;
}

int Main(int argc, char** argv) {
  bool as_json = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      as_json = true;
    } else {
      out_path = argv[i];
    }
  }

  const uint64_t n = ScaledN(200'000);
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 24;
  spec.seed = 42;
  const std::vector<uint64_t> data = GenerateDataset(spec);

  std::vector<SweepPoint> sweep;
  for (const int nodes : {1, 2, 4, 8}) {
    std::fprintf(stderr, "cluster sweep: %d node(s), n=%llu\n", nodes,
                 static_cast<unsigned long long>(n));
    sweep.push_back(RunSweepPoint(nodes, data));
  }
  std::fprintf(stderr, "cluster failover: 4 nodes\n");
  const FailoverPoint failover = RunFailover(4, data);

  if (!as_json) {
    std::printf("cluster ingest (Random eps=%.2g, n=%llu, durable nodes, "
                "perfect channels)\n\n",
                kEps, static_cast<unsigned long long>(n));
    std::printf("%6s %16s %16s %18s %14s\n", "nodes", "ns/append",
                "inserts/sec", "merge latency us", "coord KB");
    for (const SweepPoint& p : sweep) {
      std::printf("%6d %16.1f %16.0f %18.1f %14.1f\n", p.nodes,
                  p.ns_per_append, p.inserts_per_sec, p.merge_latency_us,
                  p.coordinator_memory_bytes / 1024.0);
    }
    std::printf(
        "\nfailover (%d nodes, kill at 60%% of stream): recovery %.2f ms, "
        "%llu updates replayed, resync %.2f ms\n",
        failover.nodes, failover.recovery_ms,
        static_cast<unsigned long long>(failover.replayed_updates),
        failover.resync_ms);
    return 0;
  }

  std::string json = "{\n";
  json += "  \"algorithm\": \"Random\",\n";
  json += "  \"dataset\": \"uniform-random\",\n";
  json += "  \"n\": " + std::to_string(n) + ",\n";
  json += "  \"sweep\": [\n";
  bool first = true;
  for (const SweepPoint& p : sweep) {
    if (!first) json += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"nodes\": %d, \"ns_per_append\": %.3f, "
                  "\"inserts_per_sec\": %.1f, \"merge_latency_us\": %.3f, "
                  "\"coordinator_memory_bytes\": %zu}",
                  p.nodes, p.ns_per_append, p.inserts_per_sec,
                  p.merge_latency_us, p.coordinator_memory_bytes);
    json += buf;
  }
  json += "\n  ],\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"failover\": {\"nodes\": %d, \"recovery_ms\": %.3f, "
                "\"replayed_updates\": %llu, \"resync_ms\": %.3f}\n",
                failover.nodes, failover.recovery_ms,
                static_cast<unsigned long long>(failover.replayed_updates),
                failover.resync_ms);
  json += buf;
  json += "}\n";

  if (out_path == nullptr) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_cluster: cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_cluster: wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace streamq::bench

int main(int argc, char** argv) { return streamq::bench::Main(argc, argv); }

#else  // !STREAMQ_DURABILITY_ENABLED

#include <cstdio>

int main() {
  std::fprintf(stderr,
               "bench_cluster requires -DSTREAMQ_DURABILITY=ON (the cluster "
               "failover lane recovers a node from its WAL)\n");
  return 1;
}

#endif  // STREAMQ_DURABILITY_ENABLED
