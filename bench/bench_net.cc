// bench_net: the network service tier's deployment numbers (DESIGN.md
// section 15) -- sustained insert throughput and query latency over TCP
// loopback vs concurrent client count, for both framing granularities:
//
//   * INSERT        one value per frame, pipelined (window-limited)
//   * BATCH_INSERT  4096 values per frame, pipelined
//
// The ratio between the two lanes is the acceptance gate of the network
// tier: a 4096-element frame must amortise the per-frame costs (syscall,
// header, CRC, response) to >= 10x the single-item inserts/sec at one
// client. Query latency is measured synchronously (one round trip per
// QUERY) against a populated stream, reported as p50/p99.
//
// Not a paper figure: the paper measures in-process summaries. This bench
// backs src/net/ the way bench_cluster backs src/cluster/: it prices the
// wire. Loopback TCP keeps the numbers about the protocol + reactor, not
// the NIC.
//
// Usage: bench_net [--json] [OUT.json]
//   --json         write the BENCH_baseline.json "net" section (to
//                  OUT.json, default stdout; splice into the committed
//                  baseline with scripts/merge_net_bench.py)
//
// Scale knobs: STREAMQ_SCALE as everywhere (base counts below).

#include <cstdio>

#if STREAMQ_NET_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/client.h"
#include "net/reactor.h"
#include "net/server.h"

namespace streamq::bench {
namespace {

constexpr size_t kBatch = 4096;
constexpr size_t kPipelineWindow = 256;  // outstanding frames per client

struct SweepPoint {
  int clients = 0;
  double insert_per_sec = 0.0;
  double batch_insert_per_sec = 0.0;
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;
};

/// Server + reactor on a background thread, ephemeral loopback port.
class Fixture {
 public:
  Fixture() {
    net::ServerOptions options;
    options.ring_capacity = 1 << 16;
    server_ = std::make_unique<net::StreamqServer>(options);
    reactor_ = net::Reactor::Create(server_.get(), net::ReactorOptions{});
    if (reactor_ == nullptr) {
      std::fprintf(stderr, "bench_net: cannot bind a loopback socket\n");
      std::exit(1);
    }
    thread_ = std::thread([this] { reactor_->Run(); });
  }

  ~Fixture() {
    reactor_->Shutdown();
    thread_.join();
  }

  std::unique_ptr<net::StreamqClient> Connect() {
    net::ClientOptions options;
    options.io_timeout_ms = 60000;
    auto client =
        net::StreamqClient::ConnectTcp("127.0.0.1", reactor_->port(), options);
    if (client == nullptr) {
      std::fprintf(stderr, "bench_net: connect failed\n");
      std::exit(1);
    }
    return client;
  }

 private:
  std::unique_ptr<net::StreamqServer> server_;
  std::unique_ptr<net::Reactor> reactor_;
  std::thread thread_;
};

void Check(const net::NetResponse& resp, const char* what) {
  if (!resp.ok()) {
    std::fprintf(stderr, "bench_net: %s failed: %s\n", what,
                 resp.message.c_str());
    std::exit(1);
  }
}

/// Sends `n_values` through `client` as pipelined single INSERTs or
/// as pipelined 4096-element BATCH_INSERT frames; every response checked.
void PushValues(net::StreamqClient& client, const std::string& stream,
                uint64_t n_values, bool batched, uint64_t salt) {
  net::NetResponse resp;
  uint64_t sent = 0;
  while (sent < n_values) {
    net::NetRequest req;
    req.stream = stream;
    if (batched) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(kBatch, n_values - sent));
      req.op = net::NetOp::kBatchInsert;
      req.values.resize(take);
      for (size_t i = 0; i < take; ++i) {
        req.values[i] = (salt + sent + i) * 2654435761u % (uint64_t{1} << 24);
      }
      sent += take;
    } else {
      req.op = net::NetOp::kInsert;
      req.value = (salt + sent) * 2654435761u % (uint64_t{1} << 24);
      ++sent;
    }
    if (client.Send(std::move(req)) == 0) {
      std::fprintf(stderr, "bench_net: send failed: %s\n",
                   client.error().c_str());
      std::exit(1);
    }
    while (client.outstanding() >= kPipelineWindow) {
      if (!client.Receive(&resp)) {
        std::fprintf(stderr, "bench_net: receive failed: %s\n",
                     client.error().c_str());
        std::exit(1);
      }
      Check(resp, batched ? "BATCH_INSERT" : "INSERT");
    }
  }
  std::vector<net::NetResponse> rest;
  if (!client.DrainAll(&rest)) {
    std::fprintf(stderr, "bench_net: drain failed: %s\n",
                 client.error().c_str());
    std::exit(1);
  }
  for (const net::NetResponse& r : rest) {
    Check(r, batched ? "BATCH_INSERT" : "INSERT");
  }
}

/// One insert lane: `clients` threads, each its own connection, all
/// pushing concurrently. Returns aggregate inserts/sec.
double RunInsertLane(Fixture& fixture, const std::string& stream, int clients,
                     uint64_t values_per_client, bool batched) {
  std::vector<std::unique_ptr<net::StreamqClient>> conns;
  for (int c = 0; c < clients; ++c) conns.push_back(fixture.Connect());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    net::StreamqClient* client = conns[static_cast<size_t>(c)].get();
    threads.emplace_back([client, &stream, values_per_client, batched, c] {
      PushValues(*client, stream, values_per_client, batched,
                 static_cast<uint64_t>(c) * 0x9E3779B9u);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(values_per_client) * clients / secs;
}

/// Synchronous query lane: every thread round-trips `queries_per_client`
/// QUERYs; all latencies merged for the percentiles.
void RunQueryLane(Fixture& fixture, const std::string& stream, int clients,
                  int queries_per_client, SweepPoint* point) {
  std::vector<std::unique_ptr<net::StreamqClient>> conns;
  for (int c = 0; c < clients; ++c) conns.push_back(fixture.Connect());

  std::vector<std::vector<double>> lat_us(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    net::StreamqClient* client = conns[static_cast<size_t>(c)].get();
    std::vector<double>* lats = &lat_us[static_cast<size_t>(c)];
    threads.emplace_back([client, &stream, queries_per_client, lats, c] {
      lats->reserve(static_cast<size_t>(queries_per_client));
      for (int q = 0; q < queries_per_client; ++q) {
        const double phi =
            0.001 + 0.998 * ((q * 31 + c * 7) % 1000) / 1000.0;
        const auto t0 = std::chrono::steady_clock::now();
        const net::NetResponse resp = client->Query(stream, phi);
        const auto t1 = std::chrono::steady_clock::now();
        Check(resp, "QUERY");
        lats->push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<double> all;
  for (const auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  point->query_p50_us = all[all.size() / 2];
  point->query_p99_us = all[all.size() * 99 / 100];
}

SweepPoint RunSweepPoint(int clients, uint64_t insert_values_per_client,
                         uint64_t batch_values_per_client,
                         int queries_per_client) {
  SweepPoint point;
  point.clients = clients;

  Fixture fixture;
  {
    auto setup = fixture.Connect();
    net::CreateParams params;
    params.algorithm = "Random";
    params.eps = 0.001;
    params.log_universe = 24;
    Check(setup->Create("bench", params), "CREATE");
  }

  point.insert_per_sec = RunInsertLane(fixture, "bench", clients,
                                       insert_values_per_client, false);
  point.batch_insert_per_sec = RunInsertLane(fixture, "bench", clients,
                                             batch_values_per_client, true);
  {
    auto c = fixture.Connect();
    Check(c->Flush("bench"), "FLUSH");
  }
  RunQueryLane(fixture, "bench", clients, queries_per_client, &point);
  return point;
}

int Main(int argc, char** argv) {
  bool as_json = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      as_json = true;
    } else {
      out_path = argv[i];
    }
  }

  const uint64_t insert_per_client = ScaledN(100'000);
  const uint64_t batch_per_client = ScaledN(2'000'000);
  const int queries_per_client = 1000;

  std::vector<SweepPoint> sweep;
  for (const int clients : {1, 4, 16}) {
    std::fprintf(stderr,
                 "net sweep: %d client(s), %llu single + %llu batched "
                 "values each\n",
                 clients, static_cast<unsigned long long>(insert_per_client),
                 static_cast<unsigned long long>(batch_per_client));
    sweep.push_back(RunSweepPoint(clients, insert_per_client,
                                  batch_per_client, queries_per_client));
  }

  if (!as_json) {
    std::printf("network service (Random eps=0.001, TCP loopback, "
                "window %zu, batch %zu)\n\n",
                kPipelineWindow, kBatch);
    std::printf("%8s %16s %18s %10s %12s %12s\n", "clients", "insert/sec",
                "batch-insert/sec", "speedup", "query p50us", "query p99us");
    for (const SweepPoint& p : sweep) {
      std::printf("%8d %16.0f %18.0f %9.1fx %12.1f %12.1f\n", p.clients,
                  p.insert_per_sec, p.batch_insert_per_sec,
                  p.batch_insert_per_sec / p.insert_per_sec, p.query_p50_us,
                  p.query_p99_us);
    }
    return 0;
  }

  std::string json = "{\n";
  json += "  \"algorithm\": \"Random\",\n";
  json += "  \"transport\": \"tcp-loopback\",\n";
  json += "  \"batch\": " + std::to_string(kBatch) + ",\n";
  json += "  \"pipeline_window\": " + std::to_string(kPipelineWindow) + ",\n";
  json += "  \"insert_values_per_client\": " +
          std::to_string(insert_per_client) + ",\n";
  json += "  \"batch_values_per_client\": " +
          std::to_string(batch_per_client) + ",\n";
  json += "  \"sweep\": [\n";
  bool first = true;
  for (const SweepPoint& p : sweep) {
    if (!first) json += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"clients\": %d, \"insert_per_sec\": %.1f, "
                  "\"batch_insert_per_sec\": %.1f, \"query_p50_us\": %.3f, "
                  "\"query_p99_us\": %.3f}",
                  p.clients, p.insert_per_sec, p.batch_insert_per_sec,
                  p.query_p50_us, p.query_p99_us);
    json += buf;
  }
  json += "\n  ]\n}\n";

  if (out_path == nullptr) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_net: cannot open %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_net: wrote %s\n", out_path);
  return 0;
}

}  // namespace
}  // namespace streamq::bench

int main(int argc, char** argv) { return streamq::bench::Main(argc, argv); }

#else  // !STREAMQ_NET_ENABLED

int main() {
  std::fprintf(stderr,
               "bench_net requires -DSTREAMQ_NET=ON (the network service "
               "tier is compiled out)\n");
  return 1;
}

#endif  // STREAMQ_NET_ENABLED
