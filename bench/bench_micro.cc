// google-benchmark micro-benchmarks: per-update and per-query costs of every
// algorithm, complementing the per-figure harnesses with statistically
// stabilised numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "quantile/factory.h"
#include "stream/generators.h"

namespace streamq {
namespace {

const std::vector<uint64_t>& Data() {
  static const auto* data = [] {
    DatasetSpec spec;
    spec.distribution = Distribution::kUniform;
    spec.log_universe = 24;
    spec.n = 1 << 18;
    spec.seed = 5;
    return new std::vector<uint64_t>(GenerateDataset(spec));
  }();
  return *data;
}

SketchConfig Config(Algorithm algorithm, double eps) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.eps = eps;
  config.log_universe = 24;
  config.rss_width_cap = 1 << 10;
  return config;
}

void BM_Update(benchmark::State& state) {
  const auto algorithm = static_cast<Algorithm>(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const auto& data = Data();
  auto sketch = MakeSketch(Config(algorithm, eps));
  size_t i = 0;
  for (auto _ : state) {
    sketch->Insert(data[i]);
    if (++i == data.size()) i = 0;
  }
  state.SetLabel(AlgorithmName(algorithm));
  state.SetItemsProcessed(state.iterations());
}

// Batched counterpart of BM_Update: whole spans through UpdateBatch, so the
// per-item figure shows what the amortisation (one dispatch + one metrics
// tick per span, SIMD interiors) buys over the item-wise NVI entry.
void BM_UpdateBatch(benchmark::State& state) {
  const auto algorithm = static_cast<Algorithm>(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const size_t span = static_cast<size_t>(state.range(2));
  const auto& data = Data();
  auto sketch = MakeSketch(Config(algorithm, eps));
  size_t off = 0;
  uint64_t items = 0;
  for (auto _ : state) {
    const size_t len = std::min(span, data.size() - off);
    sketch->UpdateBatch(std::span<const uint64_t>(data.data() + off, len));
    items += len;
    off += len;
    if (off == data.size()) off = 0;
  }
  state.SetLabel(AlgorithmName(algorithm));
  state.SetItemsProcessed(static_cast<int64_t>(items));
}

void BM_Query(benchmark::State& state) {
  const auto algorithm = static_cast<Algorithm>(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const auto& data = Data();
  auto sketch = MakeSketch(Config(algorithm, eps));
  for (uint64_t v : data) sketch->Insert(v);
  double phi = 0.0;
  for (auto _ : state) {
    phi += 0.37;
    if (phi >= 1.0) phi -= 1.0;
    if (phi <= 0.0) phi = 0.5;
    benchmark::DoNotOptimize(sketch->Query(phi));
  }
  state.SetLabel(AlgorithmName(algorithm));
}

void RegisterAll() {
  for (Algorithm a :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
        Algorithm::kDcm, Algorithm::kDcs, Algorithm::kDcsPost}) {
    for (int inv_eps : {100, 1000}) {
      benchmark::RegisterBenchmark(
          ("BM_Update/" + AlgorithmName(a) + "/eps_1e-" +
           std::to_string(inv_eps == 100 ? 2 : 3))
              .c_str(),
          BM_Update)
          ->Args({static_cast<int>(a), inv_eps});
    }
    for (int span : {256, 4096}) {
      benchmark::RegisterBenchmark(
          ("BM_UpdateBatch/" + AlgorithmName(a) + "/span_" +
           std::to_string(span))
              .c_str(),
          BM_UpdateBatch)
          ->Args({static_cast<int>(a), 1000, span});
    }
    benchmark::RegisterBenchmark(
        ("BM_Query/" + AlgorithmName(a)).c_str(), BM_Query)
        ->Args({static_cast<int>(a), 1000});
  }
}

}  // namespace
}  // namespace streamq

int main(int argc, char** argv) {
  streamq::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
