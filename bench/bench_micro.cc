// google-benchmark micro-benchmarks: per-update and per-query costs of every
// algorithm, complementing the per-figure harnesses with statistically
// stabilised numbers.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "quantile/factory.h"
#include "stream/generators.h"

namespace streamq {
namespace {

const std::vector<uint64_t>& Data() {
  static const auto* data = [] {
    DatasetSpec spec;
    spec.distribution = Distribution::kUniform;
    spec.log_universe = 24;
    spec.n = 1 << 18;
    spec.seed = 5;
    return new std::vector<uint64_t>(GenerateDataset(spec));
  }();
  return *data;
}

SketchConfig Config(Algorithm algorithm, double eps) {
  SketchConfig config;
  config.algorithm = algorithm;
  config.eps = eps;
  config.log_universe = 24;
  config.rss_width_cap = 1 << 10;
  return config;
}

void BM_Update(benchmark::State& state) {
  const auto algorithm = static_cast<Algorithm>(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const auto& data = Data();
  auto sketch = MakeSketch(Config(algorithm, eps));
  size_t i = 0;
  for (auto _ : state) {
    sketch->Insert(data[i]);
    if (++i == data.size()) i = 0;
  }
  state.SetLabel(AlgorithmName(algorithm));
  state.SetItemsProcessed(state.iterations());
}

void BM_Query(benchmark::State& state) {
  const auto algorithm = static_cast<Algorithm>(state.range(0));
  const double eps = 1.0 / static_cast<double>(state.range(1));
  const auto& data = Data();
  auto sketch = MakeSketch(Config(algorithm, eps));
  for (uint64_t v : data) sketch->Insert(v);
  double phi = 0.0;
  for (auto _ : state) {
    phi += 0.37;
    if (phi >= 1.0) phi -= 1.0;
    if (phi <= 0.0) phi = 0.5;
    benchmark::DoNotOptimize(sketch->Query(phi));
  }
  state.SetLabel(AlgorithmName(algorithm));
}

void RegisterAll() {
  for (Algorithm a :
       {Algorithm::kGkTheory, Algorithm::kGkAdaptive, Algorithm::kGkArray,
        Algorithm::kFastQDigest, Algorithm::kMrl99, Algorithm::kRandom,
        Algorithm::kDcm, Algorithm::kDcs, Algorithm::kDcsPost}) {
    for (int inv_eps : {100, 1000}) {
      benchmark::RegisterBenchmark(
          ("BM_Update/" + AlgorithmName(a) + "/eps_1e-" +
           std::to_string(inv_eps == 100 ? 2 : 3))
              .c_str(),
          BM_Update)
          ->Args({static_cast<int>(a), inv_eps});
    }
    benchmark::RegisterBenchmark(
        ("BM_Query/" + AlgorithmName(a)).c_str(), BM_Query)
        ->Args({static_cast<int>(a), 1000});
  }
}

}  // namespace
}  // namespace streamq

int main(int argc, char** argv) {
  streamq::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
