// Ablation: why does GKArray's buffering help, and how should the buffer be
// sized?
//
// The journal paper attributes GKArray's speed to replacing per-element
// binary-search-tree + heap work (GKAdaptive) with sort-and-merge in
// batches of Theta(|L|). This bench isolates the two design choices:
//   1. buffering at all   -- GKAdaptive vs GKArray at any buffer size;
//   2. buffer proportional to |L| -- factor sweep 0 (fixed 256) .. 4.
// A too-small buffer re-scans the summary too often (merge cost per element
// grows as |L|/|A|); a larger buffer trades transient memory for speed with
// diminishing returns past factor ~1, which is why Theta(|L|) is the right
// choice.

#include <chrono>
#include <cstdio>
#include <vector>

#include "harness.h"
#include "quantile/cash_register.h"
#include "quantile/gk_array.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.log_universe = 32;
  spec.n = ScaledN(2'000'000);
  spec.seed = 21;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  const double eps = 1e-4;

  PrintHeader("Ablation: GKArray buffer sizing (uniform, eps=1e-4)",
              {"variant", "ns/update", "space", "max_err"});

  auto report = [&](const std::string& name, auto& impl_holder) {
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t v : data) impl_holder.Insert(v);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    ErrorStats stats = EvaluateQuantiles(impl_holder, oracle, eps);
    PrintRow({name, FmtTime(secs * 1e9 / data.size()),
              FmtBytes(impl_holder.MemoryBytes()), FmtErr(stats.max_error)});
  };

  {
    GkAdaptive adaptive(eps);
    report("GKAdaptive(no-buffer)", adaptive);
  }
  for (double factor : {0.0, 0.25, 1.0, 4.0}) {
    // Wrap the impl so EvaluateQuantiles can drive it via the interface.
    class Wrapper : public QuantileSketch {
     public:
      Wrapper(double eps, double factor) : impl_(eps, 256, factor) {}
      int64_t EstimateRank(uint64_t v) override { return impl_.EstimateRank(v); }
      uint64_t Count() const override { return impl_.Count(); }
      size_t MemoryBytes() const override { return impl_.MemoryBytes(); }
      std::string Name() const override { return "GKArray"; }

     protected:
      StreamqStatus InsertImpl(uint64_t v) override {
        impl_.Insert(v);
        return StreamqStatus::kOk;
      }
      uint64_t QueryImpl(double phi) override { return impl_.Query(phi); }
      std::vector<uint64_t> QueryManyImpl(
          const std::vector<double>& p) override {
        return impl_.QueryMany(p);
      }

     private:
      GkArrayImpl<uint64_t> impl_;
    };
    Wrapper w(eps, factor);
    char name[64];
    std::snprintf(name, sizeof(name), "GKArray(f=%.2f)", factor);
    report(name, w);
  }
  return 0;
}
