// Section 1.2.1 of the paper: "We omit results for the algorithms of Munro
// and Paterson [23] and the earlier algorithm of Manku et al. [21], since
// they have previously been demonstrated to be outperformed by the GK
// algorithm." This bench reproduces that prior demonstration: at equal eps
// targets, MP80 and MRL98 need several times GK's space (and MP80's grows
// with n), with no accuracy advantage.

#include <chrono>
#include <cstdio>

#include "harness.h"
#include "quantile/cash_register.h"
#include "quantile/legacy_deterministic.h"

using namespace streamq;
using namespace streamq::bench;

namespace {

template <typename Sketch>
void Report(const char* name, Sketch& sketch,
            const std::vector<uint64_t>& data, const ExactOracle& oracle,
            double eps) {
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t v : data) sketch.Insert(v);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const ErrorStats stats = EvaluateQuantiles(sketch, oracle, eps);
  PrintRow({name, FmtEps(eps), FmtTime(secs * 1e9 / data.size()),
            FmtBytes(sketch.MemoryBytes()), FmtErr(stats.max_error)});
}

}  // namespace

int main() {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.log_universe = 24;
  spec.n = ScaledN(2'000'000);
  spec.seed = 15;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);

  PrintHeader("Prior deterministic algorithms vs GK (uniform)",
              {"algorithm", "eps", "ns/update", "space", "max_err"});
  for (double eps : {1e-2, 1e-3, 1e-4}) {
    {
      Mp80 mp(eps);
      Report("MP80", mp, data, oracle, eps);
    }
    {
      Mrl98 mrl(eps, spec.n);
      Report("MRL98", mrl, data, oracle, eps);
    }
    {
      GkAdaptive gk(eps);
      Report("GKAdaptive", gk, data, oracle, eps);
    }
    {
      GkArray gk(eps);
      Report("GKArray", gk, data, oracle, eps);
    }
  }
  std::printf(
      "\nGK meets the same deterministic guarantee in a fraction of the "
      "space; MP80's space additionally grows with the stream length.\n");
  return 0;
}
