// bench_durability: the price of crash safety on the ingest hot path
// (DESIGN.md section 11).
//
// Not a paper figure: the paper's algorithms are measured in-memory. This
// bench backs the durable-ingest subsystem by answering the deployment
// question the design doc raises -- what does the WAL cost per update, and
// how long does recovery take?  It pushes the same stream through the
// sharded pipeline with durability off, with the WAL on in-memory storage
// (isolates framing/CRC/copy cost from the filesystem), and with the WAL
// on the real filesystem at two fsync cadences. A second section times
// Create()-with-recovery over the state each durable run left behind.
//
// Scale knobs: STREAMQ_SCALE as everywhere (base n = 1,000,000).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.h"

#if STREAMQ_DURABILITY_ENABLED
#include "durability/storage.h"
#endif

namespace streamq::bench {
namespace {

#if STREAMQ_DURABILITY_ENABLED

struct DurabilityRun {
  double ns_per_update = 0.0;
  double recovery_ms = 0.0;
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
  uint64_t checkpoints = 0;
  uint64_t replayed_updates = 0;
};

ingest::IngestOptions BaseOptions(const SketchConfig& config) {
  ingest::IngestOptions options;
  options.sketch = config;
  options.shards = 4;
  return options;
}

uint64_t SumWal(const ingest::IngestPipeline& pipeline,
                const obs::MetricsRegistry& registry, const char* what) {
  uint64_t total = 0;
  for (int s = 0; s < pipeline.shard_count(); ++s) {
    const obs::Counter* c = registry.FindCounter(
        "ingest.shard" + std::to_string(s) + ".wal_" + what);
    if (c != nullptr) total += c->value();
  }
  return total;
}

DurabilityRun RunOnce(const SketchConfig& config,
                      const std::vector<uint64_t>& data,
                      durability::Storage* storage, const std::string& dir,
                      uint64_t sync_interval) {
  DurabilityRun result;
  {
    ingest::IngestOptions options = BaseOptions(config);
    if (storage != nullptr) {
      options.durability.enabled = true;
      options.durability.storage = storage;
      options.durability.dir = dir;
      options.durability.sync_interval = sync_interval;
    }
    auto pipeline = ingest::IngestPipeline::Create(options);
    if (pipeline == nullptr) {
      std::fprintf(stderr, "bench_durability: pipeline creation failed\n");
      std::exit(1);
    }
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t v : data) pipeline->Push(Update{v, +1});
    pipeline->Flush();
    const auto stop = std::chrono::steady_clock::now();
    result.ns_per_update =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(data.size());
    pipeline->Stop();
    if (storage != nullptr) {
      obs::MetricsRegistry registry;
      pipeline->PublishMetrics(registry, "ingest");
      result.wal_bytes = SumWal(*pipeline, registry, "bytes");
      result.wal_syncs = SumWal(*pipeline, registry, "syncs");
      result.checkpoints = pipeline->stats().checkpoints.load();
    }
  }
  if (storage != nullptr) {
    // Recovery cost: a fresh incarnation over what the run left behind
    // (newest checkpoint + WAL tail).
    ingest::IngestOptions options = BaseOptions(config);
    options.durability.enabled = true;
    options.durability.storage = storage;
    options.durability.dir = dir;
    const auto start = std::chrono::steady_clock::now();
    auto recovered = ingest::IngestPipeline::Create(options);
    const auto stop = std::chrono::steady_clock::now();
    if (recovered == nullptr) {
      std::fprintf(stderr, "bench_durability: recovery failed\n");
      std::exit(1);
    }
    result.recovery_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    result.replayed_updates = recovered->recovery().replayed_updates;
    recovered->Stop();
  }
  return result;
}

void CleanDir(durability::Storage& storage, const std::string& dir) {
  for (const char* sub : {"/wal", "/ckpt"}) {
    for (const std::string& name : storage.List(dir + sub)) {
      storage.Delete(dir + sub + "/" + name);
    }
  }
}

int Main() {
  const uint64_t n = ScaledN(1'000'000);
  const double eps = 0.01;
  std::printf("durable ingest cost: n=%llu eps=%.2g shards=4\n",
              static_cast<unsigned long long>(n), eps);

  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.n = n;
  spec.log_universe = 29;
  spec.order = Order::kRandom;
  const std::vector<uint64_t> data = GenerateDataset(spec);

  SketchConfig config;
  config.algorithm = Algorithm::kRandom;
  config.eps = eps;
  config.log_universe = spec.LogUniverse();

  const std::string posix_dir =
      (std::filesystem::temp_directory_path() / "streamq_bench_durability")
          .string();

  PrintHeader("Random / " + spec.Name(),
              {"mode", "ns/upd", "overhead", "wal MB", "fsyncs", "ckpts",
               "recover ms", "replayed"});

  const DurabilityRun off = RunOnce(config, data, nullptr, "", 0);
  PrintRow({"wal off", FmtTime(off.ns_per_update), "1.00x", "-", "-", "-",
            "-", "-"});

  struct Mode {
    const char* name;
    bool posix;
    uint64_t sync_interval;
  };
  for (const Mode& mode :
       {Mode{"wal mem  fsync/4096", false, 4096},
        Mode{"wal disk fsync/4096", true, 4096},
        Mode{"wal disk fsync/1024", true, 1024}}) {
    durability::MemStorage mem;
    durability::PosixStorage posix;
    durability::Storage& storage =
        mode.posix ? static_cast<durability::Storage&>(posix)
                   : static_cast<durability::Storage&>(mem);
    const std::string dir = mode.posix ? posix_dir : "bench";
    if (mode.posix) CleanDir(storage, dir);
    const DurabilityRun run =
        RunOnce(config, data, &storage, dir, mode.sync_interval);
    char overhead[32], walmb[32], num[32], ms[32];
    std::snprintf(overhead, sizeof(overhead), "%.2fx",
                  run.ns_per_update / off.ns_per_update);
    std::snprintf(walmb, sizeof(walmb), "%.1f",
                  static_cast<double>(run.wal_bytes) / (1024.0 * 1024.0));
    std::snprintf(ms, sizeof(ms), "%.1f", run.recovery_ms);
    std::snprintf(num, sizeof(num), "%llu",
                  static_cast<unsigned long long>(run.wal_syncs));
    PrintRow({mode.name, FmtTime(run.ns_per_update), overhead, walmb, num,
              std::to_string(run.checkpoints), ms,
              std::to_string(run.replayed_updates)});
    if (mode.posix) CleanDir(storage, dir);
  }
  return 0;
}

#else  // !STREAMQ_DURABILITY_ENABLED

int Main() {
  std::printf(
      "bench_durability: built with -DSTREAMQ_DURABILITY=OFF; nothing to "
      "measure\n");
  return 0;
}

#endif

}  // namespace
}  // namespace streamq::bench

int main() { return streamq::bench::Main(); }
