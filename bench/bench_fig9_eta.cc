// Figure 9 of the paper: tuning the truncation constant eta for Post.
//
// For eps in {0.1, 0.01, 0.001} on the MPCAT-like data, sweep eta and
// report (a) the truncated tree size relative to the DCS sketch size and
// (b) the post-processed error relative to the raw DCS error. The paper
// finds eta = 0.1 the sweet spot, with Post reducing the error to 20-40%
// of raw DCS.

#include <cstdio>
#include <vector>

#include "harness.h"
#include "quantile/dyadic_quantile.h"
#include "quantile/post/post_process.h"
#include "util/memory.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  DatasetSpec spec;
  spec.distribution = Distribution::kMpcatLike;
  spec.order = Order::kChunkedSorted;
  spec.n = ScaledN(1'000'000);
  spec.seed = 9;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  const int log_u = spec.LogUniverse();
  const int reps = Repetitions();

  PrintHeader("Fig 9: eta tradeoff for Post (MPCAT-like)",
              {"eps", "eta", "tree/sketch", "err/dcs_err"});
  for (double eps : {0.1, 0.01, 0.001}) {
    for (double eta : {1.0, 0.5, 0.2, 0.1, 0.05, 0.02}) {
      double post_err = 0.0, dcs_err = 0.0, rel_size = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        const uint64_t seed = 100 + rep * 7919;
        DcsPost post(eps, log_u, 7, eta, seed);
        for (uint64_t v : data) post.Insert(v);
        post_err += EvaluateQuantiles(post, oracle, eps).avg_error;
        rel_size += static_cast<double>(post.LastTreeBytes()) /
                    static_cast<double>(post.MemoryBytes());
        dcs_err += EvaluateQuantiles(post.dcs(), oracle, eps).avg_error;
      }
      char tree[32], rel[32];
      std::snprintf(tree, sizeof(tree), "%.3f", rel_size / reps);
      std::snprintf(rel, sizeof(rel), "%.2f",
                    dcs_err > 0 ? post_err / dcs_err : 1.0);
      PrintRow({FmtEps(eps), std::to_string(eta).substr(0, 4), tree, rel});
    }
  }
  std::printf("\nThe paper picks eta = 0.1 (error ~0.2-0.4 of raw DCS).\n");
  return 0;
}
