// Figure 12 of the paper: data skewness and the turnstile algorithms.
//
// Normal data with sigma in {0.05, 0.25} on u = 2^32. Less skew (larger
// sigma) lowers F2, which helps the Count-Sketch-based DCS and Post
// markedly while DCM (whose error depends on the L1 mass, not F2) barely
// moves -- the paper's Fig. 12 signature.

#include <vector>

#include "harness.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  const std::vector<double> eps_sweep = {3e-2, 1e-2, 3e-3, 1e-3};

  PrintHeader("Fig 12a/12b: turnstile algorithms vs skewness (normal, u=2^32)",
              {"algorithm", "sigma", "eps", "max_err", "avg_err"});
  for (double sigma : {0.05, 0.25}) {
    DatasetSpec spec;
    spec.distribution = Distribution::kNormal;
    spec.sigma = sigma;
    spec.log_universe = 32;
    spec.n = ScaledN(1'000'000);
    spec.seed = 12;
    const auto data = GenerateDataset(spec);
    const ExactOracle oracle(data);
    for (Algorithm algorithm : TurnstileAlgorithms()) {
      for (double eps : eps_sweep) {
        SketchConfig config;
        config.algorithm = algorithm;
        config.eps = eps;
        config.log_universe = 32;
        const RunResult r = Run(config, data, oracle);
        char s[16];
        std::snprintf(s, sizeof(s), "%.2f", sigma);
        PrintRow({r.algorithm, s, FmtEps(eps), FmtErr(r.max_error),
                  FmtErr(r.avg_error)});
      }
    }
  }
  return 0;
}
