// Tables 3 and 4 of the paper: tuning the number of rows d for DCS.
//
// Uniform data (paper: n = 10^7, u = 2^32), a series of total per-level
// sketch sizes; for each size, d sweeps over {3,5,7,9,11,13} and
// w = size / (4 bytes * d). The paper reports average (Table 3) and maximum
// (Table 4) observed errors x 10^-4 and finds d = 7 a good choice for both.

#include <cstdio>
#include <vector>

#include "harness.h"
#include "quantile/dyadic_quantile.h"

using namespace streamq;
using namespace streamq::bench;

int main() {
  DatasetSpec spec;
  spec.distribution = Distribution::kUniform;
  spec.log_universe = 32;
  spec.n = ScaledN(1'000'000);
  spec.seed = 34;
  const auto data = GenerateDataset(spec);
  const ExactOracle oracle(data);
  const int reps = Repetitions();

  const std::vector<int> d_sweep = {3, 5, 7, 9, 11, 13};
  const std::vector<size_t> sizes_kb = {64, 128, 256, 512, 1024, 2048};

  std::printf("Tables 3/4: tuning d for DCS (uniform, n=%llu, u=2^32)\n",
              static_cast<unsigned long long>(spec.n));
  std::printf("cells: avg_err / max_err, both x 1e-4, %d reps\n", reps);

  std::vector<std::string> header = {"d \\ size"};
  for (size_t kb : sizes_kb) header.push_back(std::to_string(kb) + "KB");
  PrintHeader("Tables 3/4", header);

  for (int d : d_sweep) {
    std::vector<std::string> row = {std::to_string(d)};
    for (size_t kb : sizes_kb) {
      // Total budget in counters (4 bytes each) split evenly over the 32
      // dyadic levels; each level's w*d array gets counters/32.
      const uint64_t counters = kb * 1024 / 4 / 32;
      const uint64_t w = std::max<uint64_t>(counters / d, 1);
      double sum_avg = 0.0, sum_max = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        auto dcs = Dcs::WithWidth(w, d, 32, 1000 + rep * 7919);
        for (uint64_t v : data) dcs->Insert(v);
        // The paper's tables probe a fixed fine grid; eps here only sets the
        // query grid density.
        const ErrorStats stats = EvaluateQuantiles(*dcs, oracle, 1e-3);
        sum_avg += stats.avg_error;
        sum_max += stats.max_error;
      }
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.2f/%.1f", sum_avg / reps * 1e4,
                    sum_max / reps * 1e4);
      row.push_back(cell);
    }
    PrintRow(row);
  }
  std::printf("\nThe paper picks d = 7 from these tables.\n");
  return 0;
}
