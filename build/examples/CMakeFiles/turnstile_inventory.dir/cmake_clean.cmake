file(REMOVE_RECURSE
  "CMakeFiles/turnstile_inventory.dir/turnstile_inventory.cpp.o"
  "CMakeFiles/turnstile_inventory.dir/turnstile_inventory.cpp.o.d"
  "turnstile_inventory"
  "turnstile_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turnstile_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
