# Empty dependencies file for turnstile_inventory.
# This may be replaced when dependencies are built.
