file(REMOVE_RECURSE
  "CMakeFiles/sensor_merge.dir/sensor_merge.cpp.o"
  "CMakeFiles/sensor_merge.dir/sensor_merge.cpp.o.d"
  "sensor_merge"
  "sensor_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
