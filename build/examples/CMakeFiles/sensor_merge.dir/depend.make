# Empty dependencies file for sensor_merge.
# This may be replaced when dependencies are built.
