file(REMOVE_RECURSE
  "CMakeFiles/distributed_monitor.dir/distributed_monitor.cpp.o"
  "CMakeFiles/distributed_monitor.dir/distributed_monitor.cpp.o.d"
  "distributed_monitor"
  "distributed_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
