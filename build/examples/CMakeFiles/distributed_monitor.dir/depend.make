# Empty dependencies file for distributed_monitor.
# This may be replaced when dependencies are built.
