file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_universe.dir/bench_fig6_universe.cc.o"
  "CMakeFiles/bench_fig6_universe.dir/bench_fig6_universe.cc.o.d"
  "bench_fig6_universe"
  "bench_fig6_universe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
