file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_order.dir/bench_fig8_order.cc.o"
  "CMakeFiles/bench_fig8_order.dir/bench_fig8_order.cc.o.d"
  "bench_fig8_order"
  "bench_fig8_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
