# Empty compiler generated dependencies file for bench_ablation_gkarray.
# This may be replaced when dependencies are built.
