file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gkarray.dir/bench_ablation_gkarray.cc.o"
  "CMakeFiles/bench_ablation_gkarray.dir/bench_ablation_gkarray.cc.o.d"
  "bench_ablation_gkarray"
  "bench_ablation_gkarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gkarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
