# Empty compiler generated dependencies file for bench_fig5_cash_register.
# This may be replaced when dependencies are built.
