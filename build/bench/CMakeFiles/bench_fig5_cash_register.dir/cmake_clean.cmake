file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cash_register.dir/bench_fig5_cash_register.cc.o"
  "CMakeFiles/bench_fig5_cash_register.dir/bench_fig5_cash_register.cc.o.d"
  "bench_fig5_cash_register"
  "bench_fig5_cash_register.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cash_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
