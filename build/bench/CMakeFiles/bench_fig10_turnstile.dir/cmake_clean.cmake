file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_turnstile.dir/bench_fig10_turnstile.cc.o"
  "CMakeFiles/bench_fig10_turnstile.dir/bench_fig10_turnstile.cc.o.d"
  "bench_fig10_turnstile"
  "bench_fig10_turnstile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_turnstile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
