# Empty compiler generated dependencies file for bench_prior_deterministic.
# This may be replaced when dependencies are built.
