file(REMOVE_RECURSE
  "CMakeFiles/bench_prior_deterministic.dir/bench_prior_deterministic.cc.o"
  "CMakeFiles/bench_prior_deterministic.dir/bench_prior_deterministic.cc.o.d"
  "bench_prior_deterministic"
  "bench_prior_deterministic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prior_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
