file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_4_tuning_d.dir/bench_table3_4_tuning_d.cc.o"
  "CMakeFiles/bench_table3_4_tuning_d.dir/bench_table3_4_tuning_d.cc.o.d"
  "bench_table3_4_tuning_d"
  "bench_table3_4_tuning_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_4_tuning_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
