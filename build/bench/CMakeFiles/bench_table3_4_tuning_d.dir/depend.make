# Empty dependencies file for bench_table3_4_tuning_d.
# This may be replaced when dependencies are built.
