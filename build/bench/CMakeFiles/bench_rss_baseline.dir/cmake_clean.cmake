file(REMOVE_RECURSE
  "CMakeFiles/bench_rss_baseline.dir/bench_rss_baseline.cc.o"
  "CMakeFiles/bench_rss_baseline.dir/bench_rss_baseline.cc.o.d"
  "bench_rss_baseline"
  "bench_rss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
