# Empty compiler generated dependencies file for bench_rss_baseline.
# This may be replaced when dependencies are built.
