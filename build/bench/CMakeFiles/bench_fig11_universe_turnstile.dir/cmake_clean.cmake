file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_universe_turnstile.dir/bench_fig11_universe_turnstile.cc.o"
  "CMakeFiles/bench_fig11_universe_turnstile.dir/bench_fig11_universe_turnstile.cc.o.d"
  "bench_fig11_universe_turnstile"
  "bench_fig11_universe_turnstile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_universe_turnstile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
