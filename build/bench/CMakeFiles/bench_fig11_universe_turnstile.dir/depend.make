# Empty dependencies file for bench_fig11_universe_turnstile.
# This may be replaced when dependencies are built.
