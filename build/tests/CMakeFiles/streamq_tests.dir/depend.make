# Empty dependencies file for streamq_tests.
# This may be replaced when dependencies are built.
