
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/biased_quantiles_test.cc" "tests/CMakeFiles/streamq_tests.dir/biased_quantiles_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/biased_quantiles_test.cc.o.d"
  "/root/repo/tests/blue_solver_test.cc" "tests/CMakeFiles/streamq_tests.dir/blue_solver_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/blue_solver_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/streamq_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/distributed_test.cc" "tests/CMakeFiles/streamq_tests.dir/distributed_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/distributed_test.cc.o.d"
  "/root/repo/tests/dyadic_quantile_test.cc" "tests/CMakeFiles/streamq_tests.dir/dyadic_quantile_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/dyadic_quantile_test.cc.o.d"
  "/root/repo/tests/exact_test.cc" "tests/CMakeFiles/streamq_tests.dir/exact_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/exact_test.cc.o.d"
  "/root/repo/tests/gk_test.cc" "tests/CMakeFiles/streamq_tests.dir/gk_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/gk_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/streamq_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/legacy_test.cc" "tests/CMakeFiles/streamq_tests.dir/legacy_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/legacy_test.cc.o.d"
  "/root/repo/tests/post_test.cc" "tests/CMakeFiles/streamq_tests.dir/post_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/post_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/streamq_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/qdigest_test.cc" "tests/CMakeFiles/streamq_tests.dir/qdigest_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/qdigest_test.cc.o.d"
  "/root/repo/tests/random_mrl_test.cc" "tests/CMakeFiles/streamq_tests.dir/random_mrl_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/random_mrl_test.cc.o.d"
  "/root/repo/tests/serde_test.cc" "tests/CMakeFiles/streamq_tests.dir/serde_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/serde_test.cc.o.d"
  "/root/repo/tests/sketch_test.cc" "tests/CMakeFiles/streamq_tests.dir/sketch_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/sketch_test.cc.o.d"
  "/root/repo/tests/sliding_window_test.cc" "tests/CMakeFiles/streamq_tests.dir/sliding_window_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/sliding_window_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/streamq_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/streamq_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/streamq_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
