file(REMOVE_RECURSE
  "libstreamq.a"
)
