
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distributed/monitor.cc" "src/CMakeFiles/streamq.dir/distributed/monitor.cc.o" "gcc" "src/CMakeFiles/streamq.dir/distributed/monitor.cc.o.d"
  "/root/repo/src/exact/error_metrics.cc" "src/CMakeFiles/streamq.dir/exact/error_metrics.cc.o" "gcc" "src/CMakeFiles/streamq.dir/exact/error_metrics.cc.o.d"
  "/root/repo/src/exact/exact_oracle.cc" "src/CMakeFiles/streamq.dir/exact/exact_oracle.cc.o" "gcc" "src/CMakeFiles/streamq.dir/exact/exact_oracle.cc.o.d"
  "/root/repo/src/quantile/dyadic_quantile.cc" "src/CMakeFiles/streamq.dir/quantile/dyadic_quantile.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/dyadic_quantile.cc.o.d"
  "/root/repo/src/quantile/factory.cc" "src/CMakeFiles/streamq.dir/quantile/factory.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/factory.cc.o.d"
  "/root/repo/src/quantile/fast_qdigest.cc" "src/CMakeFiles/streamq.dir/quantile/fast_qdigest.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/fast_qdigest.cc.o.d"
  "/root/repo/src/quantile/post/blue_solver.cc" "src/CMakeFiles/streamq.dir/quantile/post/blue_solver.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/post/blue_solver.cc.o.d"
  "/root/repo/src/quantile/post/post_process.cc" "src/CMakeFiles/streamq.dir/quantile/post/post_process.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/post/post_process.cc.o.d"
  "/root/repo/src/quantile/post/truncated_tree.cc" "src/CMakeFiles/streamq.dir/quantile/post/truncated_tree.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/post/truncated_tree.cc.o.d"
  "/root/repo/src/quantile/quantile_sketch.cc" "src/CMakeFiles/streamq.dir/quantile/quantile_sketch.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/quantile_sketch.cc.o.d"
  "/root/repo/src/quantile/sliding_window.cc" "src/CMakeFiles/streamq.dir/quantile/sliding_window.cc.o" "gcc" "src/CMakeFiles/streamq.dir/quantile/sliding_window.cc.o.d"
  "/root/repo/src/sketch/count_min.cc" "src/CMakeFiles/streamq.dir/sketch/count_min.cc.o" "gcc" "src/CMakeFiles/streamq.dir/sketch/count_min.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/CMakeFiles/streamq.dir/sketch/count_sketch.cc.o" "gcc" "src/CMakeFiles/streamq.dir/sketch/count_sketch.cc.o.d"
  "/root/repo/src/sketch/dyadic.cc" "src/CMakeFiles/streamq.dir/sketch/dyadic.cc.o" "gcc" "src/CMakeFiles/streamq.dir/sketch/dyadic.cc.o.d"
  "/root/repo/src/sketch/rss_sketch.cc" "src/CMakeFiles/streamq.dir/sketch/rss_sketch.cc.o" "gcc" "src/CMakeFiles/streamq.dir/sketch/rss_sketch.cc.o.d"
  "/root/repo/src/stream/generators.cc" "src/CMakeFiles/streamq.dir/stream/generators.cc.o" "gcc" "src/CMakeFiles/streamq.dir/stream/generators.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/streamq.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/streamq.dir/util/hash.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/streamq.dir/util/random.cc.o" "gcc" "src/CMakeFiles/streamq.dir/util/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
