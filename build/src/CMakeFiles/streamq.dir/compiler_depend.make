# Empty compiler generated dependencies file for streamq.
# This may be replaced when dependencies are built.
